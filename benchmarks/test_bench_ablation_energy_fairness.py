"""E-X3 — ablation: energy and fairness across batch policies.

Exercises the energy model (§3 feature iv) and the ELARE/FELARE policies on
the edge-AI system (accelerators with per-task-type wattage): total energy,
energy per completed task, and Jain's fairness index across task types, for
MM / MSD / ELARE / FELARE. Shapes asserted: the energy-aware policies do not
burn more energy per completed task than deadline-only Min-Min, and FELARE's
fairness index is at least ELARE's (that is its whole point).
"""


from repro.metrics.stats import summarize
from repro.scenarios import edge_ai
from repro.viz.barchart import GroupedBarChart

POLICIES = ("MM", "MSD", "ELARE", "FELARE")
REPLICATIONS = 5


def run_sweep():
    rows = {}
    for policy in POLICIES:
        completion, fairness, energy_per_task = [], [], []
        for rep in range(REPLICATIONS):
            result = edge_ai(
                scheduler=policy, intensity=2.0, duration=500.0
            ).run(replication=rep)
            s = result.summary
            completion.append(s.completion_rate)
            fairness.append(s.fairness_index)
            energy_per_task.append(s.energy_per_completed_task)
        rows[policy] = {
            "completion": summarize(completion).mean,
            "fairness": summarize(fairness).mean,
            "energy_per_task": summarize(energy_per_task).mean,
        }
    return rows


def test_bench_ablation_energy_fairness(benchmark, results_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    chart = GroupedBarChart(
        "ablation — energy & fairness on the edge-AI system (intensity 2.0)",
        unit="",
    )
    text_rows = ["policy    completion%   fairness   J/completed-task"]
    for policy, metrics in rows.items():
        chart.set("completion %", policy, 100.0 * metrics["completion"])
        chart.set("fairness ×100", policy, 100.0 * metrics["fairness"])
        chart.set("J per task", policy, metrics["energy_per_task"])
        text_rows.append(
            f"{policy:<9} {100 * metrics['completion']:10.1f}   "
            f"{metrics['fairness']:8.3f}   {metrics['energy_per_task']:10.2f}"
        )
    (results_dir / "ablation_energy_fairness.txt").write_text(
        chart.to_text() + "\n\n" + "\n".join(text_rows) + "\n",
        encoding="utf-8",
    )
    chart.to_csv(results_dir / "ablation_energy_fairness.csv")

    # Shape 1: energy-aware mapping does not cost more Joules per completed
    # task than deadline-only Min-Min (small tolerance for noise).
    assert rows["ELARE"]["energy_per_task"] <= rows["MM"]["energy_per_task"] * 1.05
    # Shape 2: fairness pressure works — FELARE ≥ ELARE on Jain's index.
    assert rows["FELARE"]["fairness"] >= rows["ELARE"]["fairness"] - 0.02
    # Shape 3: everything still completes a sane share of the overload.
    assert all(m["completion"] > 0.3 for m in rows.values())
