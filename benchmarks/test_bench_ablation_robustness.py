"""E-X4 — ablation: robustness to machine failures.

The paper's lineage (its refs [8], [10], [14]) is all about robustness of
heterogeneous systems; this ablation exercises the failure-injection
extension. Sweeps machine availability (via MTBF at fixed MTTR) and measures
completion rate for an immediate policy (MECT) vs a batch policy (MM):
failed machines evict their work back to the batch queue, and the batch
mapper re-plans around the outage while immediate mode has already committed.
"""


from repro.core.config import Scenario
from repro.education.assignment import AssignmentConfig, build_heterogeneous_eet
from repro.machines.failures import FailureModel
from repro.metrics.stats import summarize
from repro.viz.barchart import GroupedBarChart

#: (label, mtbf) at fixed mttr=15 — availabilities 1.0, 0.95, 0.87, 0.77.
MTBF_LEVELS = (
    ("no failures", None),
    ("mtbf=300", 300.0),
    ("mtbf=100", 100.0),
    ("mtbf=50", 50.0),
)
MTTR = 15.0
REPLICATIONS = 5


def run_sweep():
    config = AssignmentConfig(duration=500.0, replications=REPLICATIONS, seed=2023)
    eet = build_heterogeneous_eet(config)
    rows: dict[str, dict[str, float]] = {}
    for label, mtbf in MTBF_LEVELS:
        per_policy = {}
        for policy, capacity in (("MECT", float("inf")), ("MM", 3)):
            rates = []
            for rep in range(REPLICATIONS):
                scenario = Scenario(
                    eet=eet,
                    machine_counts={n: 1 for n in eet.machine_type_names},
                    scheduler=policy,
                    queue_capacity=capacity,
                    generator={"duration": config.duration, "intensity": 1.2},
                    failure_model=(
                        None if mtbf is None
                        else FailureModel(mtbf=mtbf, mttr=MTTR)
                    ),
                    seed=config.seed,
                    name=f"robust-{label}-{policy}",
                )
                rates.append(
                    scenario.run(replication=rep).summary.completion_rate
                )
            per_policy[policy] = summarize(rates).mean
        rows[label] = per_policy
    return rows


def test_bench_ablation_robustness(benchmark, results_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    chart = GroupedBarChart(
        "ablation — completion % under machine failures (mttr=15 s)",
        max_value=100.0,
        unit="%",
    )
    for label, per_policy in rows.items():
        for policy, rate in per_policy.items():
            chart.set(label, policy, 100.0 * rate)
    (results_dir / "ablation_robustness.txt").write_text(
        chart.to_text() + "\n", encoding="utf-8"
    )
    chart.to_csv(results_dir / "ablation_robustness.csv")

    # Shape 1: failures cost completion, monotonically in failure rate.
    for policy in ("MECT", "MM"):
        series = [rows[label][policy] for label, _ in MTBF_LEVELS]
        assert series[0] >= series[-1]
        assert series[0] > series[-1] + 0.02  # the knob matters

    # Shape 2: under heavy failures the batch mapper absorbs outages at
    # least as well as the immediate one (it re-plans evicted work).
    assert rows["mtbf=50"]["MM"] >= rows["mtbf=50"]["MECT"] - 0.05
