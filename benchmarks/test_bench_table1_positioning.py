"""E-T1 — Table 1: positioning of E2C among simulators (§2).

Regenerates the feature matrix; the E2C row is introspected live from this
library, so the benchmark fails if a claimed capability disappears.
"""

from repro.positioning import introspect_e2c, positioning_table, render_table


def test_bench_table1(benchmark, results_dir):
    table = benchmark(positioning_table)

    text = render_table()
    (results_dir / "table1_positioning.txt").write_text(
        text + "\n", encoding="utf-8"
    )

    # Paper shape: six simulators; E2C is the only row with every feature.
    assert len(table) == 6
    e2c = introspect_e2c()
    assert (e2c.language, e2c.gui, e2c.heterogeneous, e2c.workload_generator) == (
        "Python", "yes", "yes", "yes",
    )
    full_rows = [
        e for e in table
        if e.gui == "yes" and e.heterogeneous == "yes"
        and e.workload_generator == "yes"
    ]
    assert [e.name for e in full_rows] == ["E2C"]
