"""Canned scenarios: they build, run, and show their intended contrasts."""

import pytest

from repro.scenarios import classroom_homogeneous, edge_ai, satellite_imaging


class TestSatelliteImaging:
    def test_builds_and_runs(self):
        result = satellite_imaging(duration=150.0).run()
        assert result.summary.total_tasks > 0
        assert result.summary.completion_rate > 0.5

    def test_machine_population(self):
        cluster = satellite_imaging().build_cluster()
        assert cluster.counts_by_type() == {"CPU": 2, "GPU": 1, "FPGA": 1}

    def test_gpu_affinity_of_object_detection(self):
        eet = satellite_imaging().eet
        row = eet.row("object_detection")
        assert eet.machine_type_names[int(row.argmin())] == "GPU"

    def test_energy_positive(self):
        result = satellite_imaging(duration=150.0).run()
        assert result.summary.total_energy > 0

    def test_scheduler_swap(self):
        fcfs = satellite_imaging(
            scheduler="FCFS", intensity="high", duration=200.0
        ).run()
        mect = satellite_imaging(
            scheduler="MECT", intensity="high", duration=200.0
        ).run()
        assert mect.summary.completion_rate >= fcfs.summary.completion_rate


class TestEdgeAI:
    def test_builds_and_runs(self):
        result = edge_ai(duration=150.0).run()
        assert result.summary.total_tasks > 0

    def test_memory_capacities_wired(self):
        cluster = edge_ai().build_cluster()
        assert all(m.machine_type.memory_capacity > 0 for m in cluster)

    def test_network_variant(self):
        result = edge_ai(duration=100.0, with_network=True).run()
        assert result.summary.total_tasks > 0

    def test_asic_power_override(self):
        scenario = edge_ai()
        asic = scenario.power_profiles["ASIC"]
        assert asic.active_watts("face_recognition") < asic.active_watts(
            "object_detection"
        )

    def test_felare_fairness_at_least_minmin(self):
        felare = edge_ai(scheduler="FELARE", duration=250.0).run()
        mm = edge_ai(scheduler="MM", duration=250.0).run()
        # Fairness pressure should not *hurt* Jain's index materially.
        assert felare.summary.fairness_index >= mm.summary.fairness_index - 0.1


class TestClassroomHomogeneous:
    def test_eet_homogeneous(self):
        assert classroom_homogeneous().eet.is_homogeneous()

    def test_four_machines(self):
        assert len(classroom_homogeneous().build_cluster()) == 4

    def test_runs(self):
        result = classroom_homogeneous(duration=200.0).run()
        assert result.summary.total_tasks > 0
