"""Canned scenarios: they build, run, and show their intended contrasts."""

import pytest

from repro.scenarios import classroom_homogeneous, edge_ai, satellite_imaging


class TestSatelliteImaging:
    def test_builds_and_runs(self):
        result = satellite_imaging(duration=150.0).run()
        assert result.summary.total_tasks > 0
        assert result.summary.completion_rate > 0.5

    def test_machine_population(self):
        cluster = satellite_imaging().build_cluster()
        assert cluster.counts_by_type() == {"CPU": 2, "GPU": 1, "FPGA": 1}

    def test_gpu_affinity_of_object_detection(self):
        eet = satellite_imaging().eet
        row = eet.row("object_detection")
        assert eet.machine_type_names[int(row.argmin())] == "GPU"

    def test_energy_positive(self):
        result = satellite_imaging(duration=150.0).run()
        assert result.summary.total_energy > 0

    def test_scheduler_swap(self):
        fcfs = satellite_imaging(
            scheduler="FCFS", intensity="high", duration=200.0
        ).run()
        mect = satellite_imaging(
            scheduler="MECT", intensity="high", duration=200.0
        ).run()
        assert mect.summary.completion_rate >= fcfs.summary.completion_rate


class TestEdgeAI:
    def test_builds_and_runs(self):
        result = edge_ai(duration=150.0).run()
        assert result.summary.total_tasks > 0

    def test_memory_capacities_wired(self):
        cluster = edge_ai().build_cluster()
        assert all(m.machine_type.memory_capacity > 0 for m in cluster)

    def test_network_variant(self):
        result = edge_ai(duration=100.0, with_network=True).run()
        assert result.summary.total_tasks > 0

    def test_asic_power_override(self):
        scenario = edge_ai()
        asic = scenario.power_profiles["ASIC"]
        assert asic.active_watts("face_recognition") < asic.active_watts(
            "object_detection"
        )

    def test_felare_fairness_at_least_minmin(self):
        felare = edge_ai(scheduler="FELARE", duration=250.0).run()
        mm = edge_ai(scheduler="MM", duration=250.0).run()
        # Fairness pressure should not *hurt* Jain's index materially.
        assert felare.summary.fairness_index >= mm.summary.fairness_index - 0.1


class TestClassroomHomogeneous:
    def test_eet_homogeneous(self):
        assert classroom_homogeneous().eet.is_homogeneous()

    def test_four_machines(self):
        assert len(classroom_homogeneous().build_cluster()) == 4

    def test_runs(self):
        result = classroom_homogeneous(duration=200.0).run()
        assert result.summary.total_tasks > 0


class TestRegistry:
    def test_stock_presets_registered(self):
        from repro.scenarios import available_scenarios

        assert {
            "classroom_homogeneous", "edge_ai", "satellite_imaging"
        } <= set(available_scenarios())

    def test_build_scenario_forwards_overrides(self):
        from repro.scenarios import build_scenario

        scenario = build_scenario("edge_ai", duration=42.0, scheduler="MM")
        assert scenario.generator["duration"] == 42.0
        assert scenario.scheduler == "MM"

    def test_lookup_is_case_insensitive(self):
        from repro.scenarios import scenario_factory

        assert scenario_factory("Edge_AI") is scenario_factory("edge_ai")

    def test_unknown_name_raises(self):
        from repro.core.errors import UnknownScenarioError
        from repro.scenarios import build_scenario

        with pytest.raises(UnknownScenarioError):
            build_scenario("does_not_exist")

    def test_register_custom_scenario(self):
        from repro.core.errors import ConfigurationError
        from repro.scenarios import (
            build_scenario,
            register_scenario,
        )
        from repro.scenarios import registry as registry_module

        @register_scenario("test_custom_preset")
        def tiny(*, scheduler="FCFS", seed=0):
            return classroom_homogeneous(
                scheduler=scheduler, duration=50.0, seed=seed
            )

        try:
            scenario = build_scenario("test_custom_preset", scheduler="MECT")
            assert scenario.scheduler == "MECT"
            # collisions are rejected unless explicitly overwritten
            with pytest.raises(ConfigurationError, match="already registered"):
                register_scenario("test_custom_preset")(lambda: None)
            register_scenario("test_custom_preset", overwrite=True)(tiny)
        finally:
            registry_module._REGISTRY.pop("test_custom_preset", None)

    def test_custom_scenario_sweepable_in_campaign(self):
        from repro.experiments import CampaignSpec, run_campaign
        from repro.scenarios import register_scenario
        from repro.scenarios import registry as registry_module

        @register_scenario("test_sweep_preset")
        def tiny(*, scheduler="FCFS", seed=0):
            return classroom_homogeneous(
                scheduler=scheduler, duration=40.0, seed=seed
            )

        try:
            spec = CampaignSpec(
                scenarios=["test_sweep_preset"],
                schedulers=["FCFS"],
                seeds=[1, 2],
            )
            # parallel: the runner pins the fork start method where the
            # platform has it, so the runtime-registered preset must reach
            # the worker processes too
            result = run_campaign(spec, workers=2)
            assert len(result.records) == 2
        finally:
            registry_module._REGISTRY.pop("test_sweep_preset", None)
