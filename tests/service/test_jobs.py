"""Job queue: single-flight caching, determinism, and crash containment.

The acceptance bar of the service PR lives here:

* N concurrent submitters of the same spec → exactly one engine execution,
  and every submitter gets the same job (cache single-flight).
* A served-from-cache result is byte-identical to a fresh run's.
* A worker killed mid-run (SIGKILL) is retried up to the bound, then the
  job lands in FAILED with the crash captured — and no job is ever left
  RUNNING with no worker on it.
"""

import json
import os
import signal
import threading
import time

import pytest

from repro.core.errors import ServiceError, UnknownJobError
from repro.scenarios import build_scenario
from repro.service import CampaignService, JobQueue, JobState, ResultCache

SMALL_SCENARIO = {
    "preset": "classroom_homogeneous",
    "overrides": {"duration": 60.0},
}
SMALL_CAMPAIGN = {
    "scenarios": [
        {"name": "classroom_homogeneous", "overrides": {"duration": 40.0}}
    ],
    "schedulers": ["FCFS", "MECT"],
    "seeds": [1, 2],
}


def _toy_executor(request, progress=None):
    """Injectable executor: hangs on demand, fails on demand, else returns."""
    if request.get("hang"):
        time.sleep(300)
    if request.get("boom"):
        raise ValueError("poison spec")
    if progress is not None:
        progress(1, 1)
    return {"ok": True, "payload": request.get("payload", 0), "n_runs": 1}


def _wait_for(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestSingleFlight:
    def test_concurrent_identical_submissions_run_once(self, tmp_path):
        """≥8 racing submitters of one spec cost exactly one execution."""
        n_submitters = 8
        receipts = [None] * n_submitters
        barrier = threading.Barrier(n_submitters)
        with CampaignService(tmp_path, workers=4) as service:

            def submitter(i):
                barrier.wait()
                receipts[i] = service.submit(dict(SMALL_SCENARIO))

            threads = [
                threading.Thread(target=submitter, args=(i,))
                for i in range(n_submitters)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            job_ids = {r.job_id for r in receipts}
            keys = {r.key for r in receipts}
            assert len(job_ids) == 1
            assert len(keys) == 1
            job = service.wait(job_ids.pop(), timeout=60)
            assert job.state is JobState.DONE
            assert service.queue.executions == 1
            assert service.queue.coalesced + service.queue.cache_hits == (
                n_submitters - 1
            )

    def test_mixed_keys_execute_once_each(self, tmp_path):
        """Racing submitters over a spec mix: one execution per unique key."""
        specs = [
            {"preset": "classroom_homogeneous",
             "overrides": {"duration": 40.0, "seed": seed}}
            for seed in (1, 2, 3)
        ]
        with CampaignService(tmp_path, workers=4) as service:
            receipts = []
            lock = threading.Lock()
            barrier = threading.Barrier(8)

            def submitter(i):
                barrier.wait()
                r = service.submit(dict(specs[i % len(specs)]))
                with lock:
                    receipts.append(r)

            threads = [
                threading.Thread(target=submitter, args=(i,))
                for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for receipt in receipts:
                service.wait(receipt.job_id, timeout=60)
            assert len({r.key for r in receipts}) == 3
            assert service.queue.executions == 3


class TestCacheBitIdentity:
    def test_cached_result_is_byte_identical_to_fresh_run(self, tmp_path):
        """Cache bytes from two independent services are identical."""
        with CampaignService(tmp_path / "a", workers=1) as first:
            receipt_a = first.submit(dict(SMALL_SCENARIO))
            first.wait(receipt_a.job_id, timeout=60)
            bytes_a = first.cache.get_bytes(receipt_a.key)
        with CampaignService(tmp_path / "b", workers=1) as second:
            receipt_b = second.submit(dict(SMALL_SCENARIO))
            second.wait(receipt_b.job_id, timeout=60)
            bytes_b = second.cache.get_bytes(receipt_b.key)
        assert receipt_a.key == receipt_b.key
        assert bytes_a is not None
        assert bytes_a == bytes_b

    def test_cache_hit_serves_without_resimulating(self, tmp_path):
        with CampaignService(tmp_path, workers=1) as service:
            first = service.submit(dict(SMALL_SCENARIO))
            service.wait(first.job_id, timeout=60)
            executions = service.queue.executions
            again = service.submit(dict(SMALL_SCENARIO))
            assert again.cached
            assert again.job_id == first.job_id
            assert service.queue.executions == executions
            assert service.result(first.job_id) == service.result(again.job_id)

    def test_cache_survives_service_restart(self, tmp_path):
        with CampaignService(tmp_path, workers=1) as service:
            receipt = service.submit(dict(SMALL_SCENARIO))
            payload = dict(
                service.wait(receipt.job_id, timeout=60).result or
                service.result(receipt.job_id)
            )
        with CampaignService(tmp_path, workers=1) as reborn:
            again = reborn.submit(dict(SMALL_SCENARIO))
            assert again.cached
            assert reborn.queue.executions == 0
            assert reborn.result(again.job_id) == payload

    def test_cached_summary_matches_direct_run_exactly(self, tmp_path):
        """Reconstructed SummaryMetrics equals a fresh in-process run's."""
        direct = build_scenario(
            "classroom_homogeneous", duration=60.0
        ).run().summary
        with CampaignService(tmp_path, workers=1) as service:
            receipt = service.submit(dict(SMALL_SCENARIO))
            service.wait(receipt.job_id, timeout=60)
            assert service.summary(receipt.job_id) == direct
            # and again, through the cache-hit path
            again = service.submit(dict(SMALL_SCENARIO))
            assert service.summary(again.job_id) == direct


class TestProgressAndJournal:
    def test_campaign_progress_counters_and_journal(self, tmp_path):
        with CampaignService(tmp_path, workers=1) as service:
            receipt = service.submit(dict(SMALL_CAMPAIGN))
            job = service.wait(receipt.job_id, timeout=120)
            assert job.state is JobState.DONE
            assert job.runs_total == 4
            assert job.runs_done == 4
        journal = tmp_path / "state" / "journal.jsonl"
        events = [
            json.loads(line)
            for line in journal.read_text(encoding="utf-8").splitlines()
        ]
        mine = [e for e in events if e["job"] == receipt.job_id]
        assert [e for e in mine if e["event"] == "submitted"]
        assert [e for e in mine if e["event"] == "done"]
        progress = [e["runs_done"] for e in mine if e["event"] == "progress"]
        # Incremental streaming: runs-completed counters are journalled as
        # they happen, monotonically, up to the full grid.
        assert progress == sorted(progress)
        assert progress[-1] == 4

    def test_snapshots_written_per_job(self, tmp_path):
        with CampaignService(tmp_path, workers=1) as service:
            receipt = service.submit(dict(SMALL_SCENARIO))
            service.wait(receipt.job_id, timeout=60)
        snapshot = tmp_path / "state" / "jobs" / f"{receipt.job_id}.json"
        body = json.loads(snapshot.read_text(encoding="utf-8"))
        assert body["state"] == "done"
        assert body["key"] == receipt.key


class TestFaultInjection:
    def test_sigkilled_worker_retries_then_fails(self, tmp_path):
        """SIGKILL the worker each attempt: bounded retries, then FAILED."""
        queue = JobQueue(
            cache=ResultCache(tmp_path / "cache"),
            workers=1,
            max_attempts=3,
            retry_delay=0.01,
            executor=_toy_executor,
            state_dir=tmp_path / "state",
        )
        try:
            job = queue.submit({"hang": True})
            kills = 0
            seen_pids = set()

            def kill_when_running():
                nonlocal kills
                record = queue.get(job.id)
                if record.state is JobState.FAILED:
                    return True
                if (
                    record.state is JobState.RUNNING
                    and record.worker_pid
                    and record.worker_pid not in seen_pids
                ):
                    seen_pids.add(record.worker_pid)
                    try:
                        os.kill(record.worker_pid, signal.SIGKILL)
                        kills += 1
                    except ProcessLookupError:
                        pass
                return False

            assert _wait_for(kill_when_running, timeout=60)
            record = queue.get(job.id)
            assert record.state is JobState.FAILED
            assert record.attempts == 3
            assert kills == 3
            assert "worker crashed" in (record.error or "")
            # the bound is recorded in the captured error
            assert "3/3" in record.error
            # no orphaned RUNNING jobs anywhere
            assert not [
                j for j in queue.jobs() if j.state is JobState.RUNNING
            ]
            # and the replacement worker is healthy: new work still runs
            ok = queue.submit({"payload": 42})
            assert queue.wait(ok.id, timeout=30).state is JobState.DONE
            assert queue.result(ok.id)["payload"] == 42
        finally:
            queue.close()

    def test_one_crash_then_success_retries_transparently(self, tmp_path):
        """A single crash retries with backoff and still completes."""
        queue = JobQueue(
            cache=ResultCache(tmp_path / "cache"),
            workers=1,
            max_attempts=3,
            retry_delay=0.01,
            executor=_toy_executor,
        )
        try:
            job = queue.submit({"hang": True, "payload": 7})
            assert _wait_for(
                lambda: queue.get(job.id).state is JobState.RUNNING
                and queue.get(job.id).worker_pid,
                timeout=30,
            )
            # The worker already holds a pickled copy of the hanging request;
            # flip the live request *before* the kill so the retry (which
            # re-pickles at dispatch) terminates. This models a transient
            # fault: same job, crash once, succeed on the second attempt.
            record = queue.get(job.id)
            record.request["hang"] = False
            os.kill(record.worker_pid, signal.SIGKILL)
            final = queue.wait(job.id, timeout=60)
            assert final.state is JobState.DONE
            assert final.attempts == 2
            assert queue.result(job.id)["payload"] == 7
        finally:
            queue.close()

    def test_executor_exception_fails_immediately_with_error(self, tmp_path):
        queue = JobQueue(
            workers=1, max_attempts=3, retry_delay=0.01,
            executor=_toy_executor,
        )
        try:
            job = queue.submit({"boom": True})
            record = queue.wait(job.id, timeout=30)
            assert record.state is JobState.FAILED
            # deterministic failures are not retried
            assert record.attempts == 1
            assert "poison spec" in record.error
            with pytest.raises(ServiceError, match="no result"):
                queue.result(job.id)
        finally:
            queue.close()


class TestLifecycle:
    def test_cancel_pending_job(self, tmp_path):
        queue = JobQueue(workers=1, executor=_toy_executor)
        try:
            blocker = queue.submit({"hang": True})
            _wait_for(
                lambda: queue.get(blocker.id).state is JobState.RUNNING,
                timeout=30,
            )
            pending = queue.submit({"payload": 1})
            assert queue.cancel(pending.id)
            assert queue.get(pending.id).state is JobState.CANCELLED
            assert not queue.cancel(pending.id)
        finally:
            queue.close()

    def test_cancel_running_job_replaces_worker(self, tmp_path):
        queue = JobQueue(workers=1, executor=_toy_executor)
        try:
            job = queue.submit({"hang": True})
            assert _wait_for(
                lambda: queue.get(job.id).state is JobState.RUNNING,
                timeout=30,
            )
            assert queue.cancel(job.id)
            assert queue.get(job.id).state is JobState.CANCELLED
            # replacement worker takes new jobs
            ok = queue.submit({"payload": 5})
            assert queue.wait(ok.id, timeout=30).state is JobState.DONE
        finally:
            queue.close()

    def test_close_cancels_live_jobs(self):
        queue = JobQueue(workers=1, executor=_toy_executor)
        running = queue.submit({"hang": True})
        _wait_for(lambda: queue.get(running.id).state is JobState.RUNNING,
                  timeout=30)
        queued = queue.submit({"hang": True, "payload": 2})
        queue.close()
        assert queue.get(running.id).state is JobState.CANCELLED
        assert queue.get(queued.id).state is JobState.CANCELLED
        with pytest.raises(ServiceError, match="closed"):
            queue.submit({"payload": 3})

    def test_unknown_job_id(self):
        queue = JobQueue(workers=1, executor=_toy_executor)
        try:
            with pytest.raises(UnknownJobError):
                queue.get("job-999999")
            with pytest.raises(UnknownJobError):
                queue.cancel("job-999999")
        finally:
            queue.close()

    def test_recovery_requeues_interrupted_jobs(self, tmp_path):
        """PENDING/RUNNING snapshots from a dead service restart as PENDING."""
        state_dir = tmp_path / "state"
        queue = JobQueue(
            workers=1, executor=_toy_executor, state_dir=state_dir,
            cache=ResultCache(tmp_path / "cache"),
        )
        hanging = queue.submit({"hang": True, "payload": 9})
        _wait_for(lambda: queue.get(hanging.id).state is JobState.RUNNING,
                  timeout=30)
        # Simulate a hard service death: snapshot says RUNNING, nobody runs it.
        queue._stop.set()
        queue._dispatcher.join(timeout=10)
        for slot in queue._slots:
            slot.process.kill()
            slot.process.join(timeout=5)
        snapshot_path = state_dir / "jobs" / f"{hanging.id}.json"
        snapshot = json.loads(snapshot_path.read_text(encoding="utf-8"))
        assert snapshot["state"] == "running"
        # Recovery re-dispatches straight from the snapshot's request, so
        # defuse the hang there (before the reborn queue forks workers).
        snapshot["request"]["hang"] = False
        snapshot_path.write_text(json.dumps(snapshot), encoding="utf-8")

        reborn = JobQueue(
            workers=1, executor=_toy_executor, state_dir=state_dir,
            cache=ResultCache(tmp_path / "cache"),
        )
        try:
            final = reborn.wait(hanging.id, timeout=60)
            assert final.state is JobState.DONE
            assert reborn.result(hanging.id)["payload"] == 9
        finally:
            reborn.close()
