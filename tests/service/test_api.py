"""Service façade: spec-form equivalence, exact reconstruction, errors."""

import json

import pytest

from repro.core.errors import ServiceError, UnknownJobError
from repro.experiments import CampaignSpec, run_campaign
from repro.scenarios import build_scenario
from repro.service import CampaignService, JobState, request_key

PRESET_REF = {"preset": "classroom_homogeneous", "overrides": {"duration": 50.0}}
CAMPAIGN = {
    "name": "svc-api",
    "scenarios": [
        {"name": "classroom_homogeneous", "overrides": {"duration": 40.0}}
    ],
    "schedulers": ["FCFS", "MECT"],
    "seeds": [1, 2],
}


class TestSpecFormEquivalence:
    def test_preset_ref_and_expanded_dict_share_a_key(self, tmp_path):
        expanded = build_scenario(
            "classroom_homogeneous", duration=50.0
        ).to_dict()
        with CampaignService(tmp_path, workers=1) as service:
            first = service.submit(PRESET_REF)
            service.wait(first.job_id, timeout=60)
            second = service.submit(expanded)
            assert second.key == first.key
            assert second.cached
            assert service.queue.executions == 1

    def test_dict_json_string_and_file_share_a_key(self, tmp_path):
        as_dict = dict(PRESET_REF)
        as_string = json.dumps(PRESET_REF)
        as_file = tmp_path / "spec.json"
        as_file.write_text(as_string, encoding="utf-8")
        with CampaignService(tmp_path / "svc", workers=1) as service:
            receipts = [
                service.submit(as_dict),
                service.submit(as_string),
                service.submit(as_file),
            ]
            assert len({r.job_id for r in receipts}) == 1
            assert len({r.key for r in receipts}) == 1
            job = service.wait(receipts[0].job_id, timeout=60)
            assert job.state is JobState.DONE
            assert service.queue.executions == 1

    def test_renamed_scenario_hits_the_same_cache_entry(self, tmp_path):
        base = build_scenario("classroom_homogeneous", duration=50.0).to_dict()
        renamed = dict(base, name="totally-different-display-name")
        _, _, key_a = request_key(base)
        _, _, key_b = request_key(renamed)
        assert key_a == key_b

    def test_receipt_reports_kind(self, tmp_path):
        with CampaignService(tmp_path, workers=1) as service:
            scen = service.submit(PRESET_REF)
            camp = service.submit(dict(CAMPAIGN))
            assert scen.kind == "scenario"
            assert camp.kind == "campaign"
            service.wait(camp.job_id, timeout=120)


class TestExactReconstruction:
    def test_summary_equals_in_process_run(self, tmp_path):
        direct = build_scenario(
            "classroom_homogeneous", duration=50.0
        ).run().summary
        with CampaignService(tmp_path, workers=1) as service:
            receipt = service.submit(PRESET_REF)
            service.wait(receipt.job_id, timeout=60)
            assert service.summary(receipt.job_id) == direct

    def test_campaign_csv_byte_equals_run_campaign(self, tmp_path):
        direct = run_campaign(CampaignSpec.from_dict(CAMPAIGN))
        with CampaignService(tmp_path, workers=1) as service:
            receipt = service.submit(dict(CAMPAIGN))
            job = service.wait(receipt.job_id, timeout=120)
            assert job.state is JobState.DONE
            payload = service.result(receipt.job_id)
            assert payload["csv"] == direct.to_csv()
            assert payload["n_runs"] == 4


class TestErrors:
    def test_unknown_job_everywhere(self, tmp_path):
        with CampaignService(tmp_path, workers=1) as service:
            for method in (service.status, service.result, service.cancel,
                           service.wait):
                with pytest.raises(UnknownJobError):
                    method("job-424242")

    def test_result_before_done(self, tmp_path):
        hang_spec = {"preset": "classroom_homogeneous",
                     "overrides": {"duration": 3600.0}}
        with CampaignService(tmp_path, workers=1) as service:
            receipt = service.submit(hang_spec)
            with pytest.raises(ServiceError, match="no result"):
                service.result(receipt.job_id)
            service.cancel(receipt.job_id)

    def test_summary_rejects_campaign_jobs(self, tmp_path):
        with CampaignService(tmp_path, workers=1) as service:
            receipt = service.submit(dict(CAMPAIGN))
            service.wait(receipt.job_id, timeout=120)
            with pytest.raises(ServiceError, match="campaign"):
                service.summary(receipt.job_id)

    def test_unclassifiable_submission(self, tmp_path):
        with CampaignService(tmp_path, workers=1) as service:
            with pytest.raises(ServiceError, match="cannot classify"):
                service.submit({"frobnicate": True})

    def test_unknown_preset_key(self, tmp_path):
        with CampaignService(tmp_path, workers=1) as service:
            with pytest.raises(ServiceError, match="unknown key"):
                service.submit({"preset": "classroom_homogeneous",
                                "override": {"duration": 1.0}})
