"""ParallelFederatedSimulator: refusals, equivalence, drop-in behaviour.

The parallel engine's contract has two halves. The *yes* half — bit-identical
results under any state-blind federation — is pinned by the integration and
property suites; here it is exercised on small explicit workloads where the
expected numbers are checkable by hand. The *no* half matters just as much:
every zero-lookahead coupling (state-reading gateways, failure models,
observers, mid-queue migration, zero-latency links) must be refused loudly
at construction, never silently approximated.
"""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.federation import ClusterSpec, FederationSpec
from repro.federation.parallel import ParallelFederatedSimulator
from repro.federation.simulator import FederatedSimulator
from repro.federation.spec import MigrationSpec
from repro.machines.eet import EETMatrix
from repro.machines.failures import FailureModel
from repro.net import InterClusterTopology
from repro.tasks.task import Task
from repro.tasks.task_type import TaskType
from repro.tasks.workload import Workload


def two_site_inputs(*, tasks=8, latency=0.5, gateway="RANDOM_SPLIT",
                    migration=None, gateway_params=None):
    task_types = [TaskType("T1", 0, data_in=2.0)]
    eet = EETMatrix(np.array([[4.0, 2.0]]), task_types, ["SLOW", "FAST"])
    workload = Workload(
        task_types=task_types,
        tasks=[
            Task(
                id=i,
                task_type=task_types[0],
                arrival_time=float(i),
                deadline=float(i) + 30.0,
            )
            for i in range(tasks)
        ],
    )
    spec = FederationSpec(
        clusters=[
            ClusterSpec(name="edge", machine_counts={"SLOW": 1}, weight=1.0),
            ClusterSpec(name="cloud", machine_counts={"FAST": 1}, weight=1.0),
        ],
        gateway=gateway,
        gateway_params=dict(gateway_params or {}),
        topology=InterClusterTopology.uniform(
            ["edge", "cloud"], latency=latency, bandwidth=10.0
        ),
        migration=migration,
    )
    return spec, eet, workload


class TestRefusals:
    def test_workers_must_be_positive(self):
        spec, eet, workload = two_site_inputs()
        with pytest.raises(ConfigurationError, match="workers"):
            ParallelFederatedSimulator(spec, eet, workload, workers=0)

    def test_state_reading_gateway_is_refused(self):
        spec, eet, workload = two_site_inputs(gateway="LEAST_LOADED")
        with pytest.raises(ConfigurationError, match="reads live shard state"):
            ParallelFederatedSimulator(spec, eet, workload)

    def test_failure_model_is_refused(self):
        spec, eet, workload = two_site_inputs()
        model = FailureModel(mtbf=100.0, mttr=5.0)
        with pytest.raises(ConfigurationError, match="failure"):
            ParallelFederatedSimulator(
                spec, eet, workload, failure_model=model
            )

    def test_observers_are_refused(self):
        spec, eet, workload = two_site_inputs()
        with pytest.raises(ConfigurationError, match="observers"):
            ParallelFederatedSimulator(
                spec, eet, workload, observers=[object()]
            )

    def test_migration_is_refused(self):
        spec, eet, workload = two_site_inputs(
            migration=MigrationSpec(interval=10.0)
        )
        with pytest.raises(ConfigurationError, match="migration"):
            ParallelFederatedSimulator(spec, eet, workload)

    def test_zero_latency_link_is_refused(self):
        spec, eet, workload = two_site_inputs(latency=0.0)
        with pytest.raises(ConfigurationError, match="zero latency"):
            ParallelFederatedSimulator(spec, eet, workload)


class TestEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_matches_serial_exactly(self, workers):
        spec, eet, workload = two_site_inputs(tasks=20)
        serial = FederatedSimulator(spec, eet, workload, seed=7).run()
        spec, eet, workload = two_site_inputs(tasks=20)
        parallel = ParallelFederatedSimulator(
            spec, eet, workload, workers=workers, seed=7
        ).run()
        assert parallel.summary == serial.summary
        assert parallel.per_cluster == serial.per_cluster
        assert parallel.events_processed == serial.events_processed
        assert parallel.end_time == serial.end_time
        assert parallel.routing == serial.routing
        assert parallel.offloaded == serial.offloaded
        assert parallel.wan_time_total == serial.wan_time_total
        assert parallel.energy == serial.energy

    def test_in_wan_deadline_cancellation_matches_serial(self):
        # Tight deadlines + a slow fat link: some tasks expire mid-transfer,
        # exercising the coordinator's in-WAN cancellation path.
        def build():
            task_types = [TaskType("T1", 0, data_in=50.0)]
            eet = EETMatrix(np.array([[3.0, 1.0]]), task_types, ["SLOW", "FAST"])
            workload = Workload(
                task_types=task_types,
                tasks=[
                    Task(
                        id=i,
                        task_type=task_types[0],
                        arrival_time=float(i),
                        deadline=float(i) + 4.0,
                    )
                    for i in range(12)
                ],
            )
            spec = FederationSpec(
                clusters=[
                    ClusterSpec(
                        name="edge", machine_counts={"SLOW": 1}, weight=1.0
                    ),
                    ClusterSpec(
                        name="cloud", machine_counts={"FAST": 1}, weight=1.0
                    ),
                ],
                gateway="RANDOM_SPLIT",
                topology=InterClusterTopology.uniform(
                    ["edge", "cloud"], latency=1.0, bandwidth=8.0,
                    contention="fifo",
                ),
            )
            return spec, eet, workload

        serial = FederatedSimulator(*build(), seed=11).run()
        parallel = ParallelFederatedSimulator(*build(), workers=2, seed=11).run()
        assert serial.summary.cancelled > 0  # the in-WAN path is exercised
        assert parallel.summary == serial.summary
        assert parallel.events_processed == serial.events_processed
        assert parallel.end_time == serial.end_time

    def test_more_workers_than_shards_is_harmless(self):
        spec, eet, workload = two_site_inputs(tasks=6)
        serial = FederatedSimulator(spec, eet, workload, seed=5).run()
        spec, eet, workload = two_site_inputs(tasks=6)
        parallel = ParallelFederatedSimulator(
            spec, eet, workload, workers=16, seed=5
        ).run()
        assert parallel.summary == serial.summary

    def test_run_is_idempotent(self):
        spec, eet, workload = two_site_inputs(tasks=4)
        sim = ParallelFederatedSimulator(spec, eet, workload, workers=2, seed=3)
        assert sim.run() is sim.run()

    def test_lookahead_is_the_min_link_latency(self):
        spec, eet, workload = two_site_inputs(latency=0.75)
        sim = ParallelFederatedSimulator(spec, eet, workload, workers=2)
        assert sim.lookahead == 0.75
