"""FederatedSimulator semantics: routing, WAN delays, conservation, determinism."""

import dataclasses

import numpy as np
import pytest

from repro.core.config import Scenario
from repro.federation import ClusterSpec, FederationSpec
from repro.machines.eet import EETMatrix
from repro.machines.failures import FailureModel
from repro.net import InterClusterTopology
from repro.scenarios import build_scenario
from repro.tasks.task import Task
from repro.tasks.task_type import TaskType
from repro.tasks.workload import Workload


def offload_scenario(*, tasks, gateway="EET_AWARE_REMOTE", latency=1.0,
                     bandwidth=0.0, scheduler="MECT", **scenario_kwargs):
    """1 edge SLOW machine + 1 cloud FAST machine, explicit workload."""
    task_types = [TaskType("T1", 0, data_in=0.0)]
    eet = EETMatrix(np.array([[4.0, 2.0]]), task_types, ["SLOW", "FAST"])
    workload = Workload(
        task_types=task_types,
        tasks=[
            Task(
                id=i,
                task_type=task_types[0],
                arrival_time=arrival,
                deadline=deadline,
            )
            for i, (arrival, deadline) in enumerate(tasks)
        ],
    )
    topo = InterClusterTopology()
    topo.set_link("edge", "cloud", latency, bandwidth)
    federation = FederationSpec(
        clusters=[
            ClusterSpec(name="edge", machine_counts={"SLOW": 1}, weight=1.0),
            ClusterSpec(name="cloud", machine_counts={"FAST": 1}, weight=0.0),
        ],
        gateway=gateway,
        topology=topo,
    )
    return Scenario(
        eet=eet,
        machine_counts={"SLOW": 1, "FAST": 1},
        scheduler=scheduler,
        workload=workload,
        federation=federation,
        seed=3,
        name="offload-test",
        **scenario_kwargs,
    )


class TestSingleClusterEquivalence:
    def test_one_cluster_federation_matches_standalone(self):
        base = build_scenario("satellite_imaging", scheduler="MECT", seed=41)
        federation = FederationSpec(
            clusters=[
                ClusterSpec(
                    name="all",
                    machine_counts=dict(base.machine_counts),
                    weight=1.0,
                )
            ],
            gateway="LOCALITY_FIRST",
        )
        federated = dataclasses.replace(base, federation=federation)
        single = base.run()
        multi = federated.run()
        assert multi.summary == single.summary
        assert multi.end_time == single.end_time
        assert multi.per_cluster["all"] == single.summary
        assert multi.offloaded == 0


class TestWanTransfer:
    def test_offloaded_task_pays_the_wan_delay(self):
        result = offload_scenario(tasks=[(0.0, 100.0)]).run()
        # EET_AWARE_REMOTE: 1.0 (WAN) + 2.0 (FAST) < 4.0 (SLOW) -> offload.
        assert result.offloaded == 1
        assert result.routing == {
            "edge": {"edge": 0, "cloud": 1},
            "cloud": {"edge": 0, "cloud": 0},
        }
        assert result.summary.makespan == pytest.approx(3.0)
        assert result.wan_time_total == pytest.approx(1.0)
        assert result.per_cluster["cloud"].completed == 1
        assert result.per_cluster["edge"].total_tasks == 0

    def test_expensive_wan_keeps_the_task_local(self):
        result = offload_scenario(tasks=[(0.0, 100.0)], latency=3.0).run()
        assert result.offloaded == 0
        assert result.summary.makespan == pytest.approx(4.0)
        assert result.wan_time_total == 0.0

    def test_deadline_in_transit_cancels_the_task(self):
        result = offload_scenario(tasks=[(0.0, 0.5)]).run()
        summary = result.summary
        assert summary.total_tasks == 1
        assert summary.cancelled == 1
        assert summary.completed == 0
        # Accounted to the destination cluster it was travelling toward.
        assert result.per_cluster["cloud"].cancelled == 1
        # The abandoned delivery never fires: the run ends at the deadline.
        assert result.end_time == pytest.approx(0.5)

    def test_zero_latency_offload_is_immediate(self):
        result = offload_scenario(tasks=[(0.0, 100.0)], latency=0.0).run()
        assert result.offloaded == 1
        assert result.summary.makespan == pytest.approx(2.0)
        assert result.wan_time_total == 0.0


class TestConservationAndAccounting:
    def test_per_cluster_and_global_conservation(self):
        result = build_scenario("fed_heavytail", duration=250.0).run()
        total = result.summary.total_tasks
        assert total > 0
        arrivals = result.arrivals_by_cluster()
        per_cluster_total = 0
        for name, summary in result.per_cluster.items():
            assert summary.total_tasks == arrivals[name]
            assert (
                summary.completed + summary.cancelled + summary.missed
                == summary.total_tasks
            )
            per_cluster_total += summary.total_tasks
        assert per_cluster_total == total
        assert (
            result.summary.completed
            + result.summary.cancelled
            + result.summary.missed
            == total
        )
        assert sum(result.origins_by_cluster().values()) == total

    def test_conservation_with_failures(self):
        scenario = build_scenario("edge_cloud", duration=150.0)
        scenario = dataclasses.replace(
            scenario, failure_model=FailureModel(mtbf=60.0, mttr=10.0)
        )
        result = scenario.run()
        summary = result.summary
        assert summary.total_tasks > 0
        assert (
            summary.completed + summary.cancelled + summary.missed
            == summary.total_tasks
        )
        for name, cluster_summary in result.per_cluster.items():
            assert (
                cluster_summary.completed
                + cluster_summary.cancelled
                + cluster_summary.missed
                == cluster_summary.total_tasks
            )


class TestDeterminism:
    def test_back_to_back_runs_identical(self):
        scenario = build_scenario("edge_cloud", duration=150.0)
        first = scenario.run()
        second = scenario.run()
        assert first.summary == second.summary
        assert first.routing == second.routing
        assert first.events_processed == second.events_processed

    def test_origins_invariant_across_gateway_sweeps(self):
        least = build_scenario(
            "geo_3site", gateway="LEAST_LOADED", duration=150.0
        ).run()
        eet_aware = build_scenario(
            "geo_3site", gateway="EET_AWARE_REMOTE", duration=150.0
        ).run()
        assert least.origins_by_cluster() == eet_aware.origins_by_cluster()


class TestResultSurface:
    @pytest.fixture(scope="class")
    def result(self):
        return build_scenario("edge_cloud", duration=120.0).run()

    def test_machine_names_are_cluster_qualified(self, result):
        names = [row["machine"] for row in result.machine_records]
        assert len(names) == len(set(names))
        assert all(":" in name for name in names)
        assert {row["cluster"] for row in result.machine_records} == {
            "edge",
            "cloud",
        }

    def test_task_records_sorted_and_tagged(self, result):
        ids = [row["task_id"] for row in result.task_records]
        assert ids == sorted(ids)
        assert all(row["cluster"] in ("edge", "cloud") for row in result.task_records)

    def test_reports_bundle_and_text(self, result, tmp_path):
        paths = result.reports.save_all(tmp_path)
        assert len(paths) == 4
        text = result.to_text()
        assert "Federation Summary" in text
        assert "GLOBAL" in text
        assert "offloaded:" in text

    def test_offload_rate_and_energy(self, result):
        assert 0.0 <= result.offload_rate <= 1.0
        assert result.energy.total == pytest.approx(
            result.summary.total_energy
        )

    def test_scheduler_and_gateway_names(self, result):
        assert result.scheduler_name == "MECT"
        assert result.gateway_name == "EET_AWARE_REMOTE"


class TestStepAndPartialRun:
    def test_step_until_finished(self):
        simulator = offload_scenario(tasks=[(0.0, 100.0)]).build_simulator()
        steps = 0
        while simulator.step() is not None:
            steps += 1
        assert simulator.is_finished
        assert steps == simulator.events_processed
        assert simulator.result().summary.completed == 1

    def test_run_until_partial(self):
        scenario = offload_scenario(tasks=[(0.0, 100.0), (0.1, 100.0)])
        simulator = scenario.build_simulator()
        partial = simulator.run(until=0.05)
        assert partial.summary.total_tasks <= 2
        assert not simulator.is_finished
        full = simulator.run()
        assert full.summary.completed == 2
