"""FederationSpec / ClusterSpec / InterClusterTopology: validation + round-trip."""

import pytest

from repro.core.errors import ConfigurationError
from repro.federation import ClusterSpec, FederationSpec
from repro.net import InterClusterTopology, Link


def two_site_spec(**overrides):
    kwargs = dict(
        clusters=[
            ClusterSpec(name="edge", machine_counts={"CPU": 2}, weight=1.0),
            ClusterSpec(
                name="cloud",
                machine_counts={"CPU": 1, "GPU": 1},
                weight=0.0,
                scheduler="MM",
                scheduler_params={},
                queue_capacity=3,
            ),
        ],
        gateway="LEAST_LOADED",
        topology=InterClusterTopology.uniform(
            ["edge", "cloud"], latency=0.05, bandwidth=40.0
        ),
    )
    kwargs.update(overrides)
    return FederationSpec(**kwargs)


class TestClusterSpec:
    def test_requires_machines(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(name="a", machine_counts={})
        with pytest.raises(ConfigurationError):
            ClusterSpec(name="a", machine_counts={"CPU": 0})

    def test_rejects_negative_count_and_weight(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(name="a", machine_counts={"CPU": -1})
        with pytest.raises(ConfigurationError):
            ClusterSpec(name="a", machine_counts={"CPU": 1}, weight=-0.5)

    def test_requires_name(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(name="", machine_counts={"CPU": 1})

    def test_rejects_link_separator_in_name(self):
        # '->' is the serialised topology-link key separator; a cluster
        # named with it could not round-trip through JSON.
        with pytest.raises(ConfigurationError):
            ClusterSpec(name="a->b", machine_counts={"CPU": 1})

    def test_round_trip(self):
        spec = ClusterSpec(
            name="edge",
            machine_counts={"CPU": 2},
            scheduler="MECT",
            scheduler_params={"k": 1},
            queue_capacity=4,
            weight=2.0,
        )
        assert ClusterSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_missing_key(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec.from_dict({"name": "x"})


class TestFederationSpec:
    def test_duplicate_cluster_names_rejected(self):
        with pytest.raises(ConfigurationError):
            FederationSpec(
                clusters=[
                    ClusterSpec(name="a", machine_counts={"CPU": 1}),
                    ClusterSpec(name="a", machine_counts={"CPU": 1}),
                ]
            )

    def test_needs_positive_total_weight(self):
        with pytest.raises(ConfigurationError):
            FederationSpec(
                clusters=[
                    ClusterSpec(name="a", machine_counts={"CPU": 1}, weight=0.0),
                    ClusterSpec(name="b", machine_counts={"CPU": 1}, weight=0.0),
                ]
            )

    def test_topology_endpoints_must_be_clusters(self):
        topo = InterClusterTopology()
        topo.set_link("a", "nowhere", 0.1)
        with pytest.raises(ConfigurationError):
            FederationSpec(
                clusters=[
                    ClusterSpec(name="a", machine_counts={"CPU": 1}),
                    ClusterSpec(name="b", machine_counts={"CPU": 1}),
                ],
                topology=topo,
            )

    def test_totals_and_index(self):
        spec = two_site_spec()
        assert spec.total_machine_counts() == {"CPU": 3, "GPU": 1}
        assert spec.names == ["edge", "cloud"]
        assert spec.index_of("cloud") == 1
        with pytest.raises(ConfigurationError):
            spec.index_of("mars")
        assert spec.arrival_weights() == [1.0, 0.0]

    def test_json_round_trip(self):
        spec = two_site_spec(gateway_params={"threshold": 1.5})
        rebuilt = FederationSpec.from_dict(spec.to_dict())
        assert rebuilt.to_dict() == spec.to_dict()
        assert rebuilt.names == spec.names
        assert rebuilt.gateway == spec.gateway
        assert rebuilt.gateway_params == {"threshold": 1.5}
        assert rebuilt.topology.link_between("edge", "cloud") == Link(0.05, 40.0)

    def test_clusters_coerced_from_dicts(self):
        spec = FederationSpec(
            clusters=[
                {"name": "a", "machine_counts": {"CPU": 1}},
                {"name": "b", "machine_counts": {"CPU": 1}},
            ]
        )
        assert all(isinstance(c, ClusterSpec) for c in spec.clusters)


class TestInterClusterTopology:
    def test_same_cluster_is_free(self):
        topo = InterClusterTopology(default=Link(1.0, 1.0))
        assert topo.wan_delay("a", "a", 100.0) == 0.0

    def test_symmetric_fallback(self):
        topo = InterClusterTopology()
        topo.set_link("a", "b", 0.2, 10.0)
        assert topo.link_between("b", "a") == Link(0.2, 10.0)
        asym = InterClusterTopology(symmetric=False)
        asym.set_link("a", "b", 0.2, 10.0)
        assert asym.link_between("b", "a") == Link()  # default

    def test_wan_delay_includes_bandwidth(self):
        topo = InterClusterTopology()
        topo.set_link("a", "b", 0.1, 10.0)
        assert topo.wan_delay("a", "b", 5.0) == pytest.approx(0.1 + 0.5)

    def test_rejects_self_link(self):
        with pytest.raises(ConfigurationError):
            InterClusterTopology().set_link("a", "a", 0.1)

    def test_round_trip(self):
        topo = InterClusterTopology(default=Link(0.3, 5.0), symmetric=False)
        topo.set_link("a", "b", 0.1, 10.0)
        topo.set_link("b", "c", 0.2)
        rebuilt = InterClusterTopology.from_dict(topo.to_dict())
        assert rebuilt.to_dict() == topo.to_dict()
        assert rebuilt.link_between("a", "b") == Link(0.1, 10.0)
        assert rebuilt.link_between("c", "a") == Link(0.3, 5.0)

    def test_from_dict_rejects_bad_key(self):
        with pytest.raises(ConfigurationError):
            InterClusterTopology.from_dict({"links": {"a-b": [0.1, 0.0]}})

    def test_from_star(self):
        from repro.net import StarTopology

        star = StarTopology(default=Link(0.5, 0.0))
        star.set_link("edge", 0.1, 20.0)
        star.set_link("cloud", 0.2, 40.0)
        topo = InterClusterTopology.from_star(
            star, ["hub", "edge", "cloud"], hub="hub"
        )
        assert topo.link_between("hub", "edge") == Link(0.1, 20.0)
        # Non-hub pair: latencies add, bandwidth is the bottleneck spoke.
        assert topo.link_between("edge", "cloud") == Link(0.1 + 0.2, 20.0)
