"""Gateway policies: deterministic routing decisions on crafted shard states."""

import numpy as np
import pytest

from repro.core.errors import (
    ConfigurationError,
    SchedulingError,
    UnknownGatewayError,
)
from repro.machines.cluster import Cluster
from repro.machines.eet import EETMatrix
from repro.net import InterClusterTopology
from repro.scheduling.federation import (
    GatewayContext,
    create_gateway,
    gateway_class,
    shard_pressure,
)
from repro.tasks.task import Task
from repro.tasks.task_type import TaskType

TASK_TYPES = [TaskType("T1", 0, data_in=10.0)]
EET = EETMatrix(np.array([[4.0, 2.0]]), TASK_TYPES, ["SLOW", "FAST"])


class StubShard:
    """Minimal ShardView implementation for policy unit tests."""

    def __init__(self, index, name, *, counts, in_system=0, weight=1.0):
        self.index = index
        self.name = name
        self.weight = weight
        self.cluster = Cluster.build(EET, counts)
        self.in_system = in_system


def make_ctx(shards, *, topology=None, origin=0, now=0.0, seed=0):
    task = Task(id=0, task_type=TASK_TYPES[0], arrival_time=now, deadline=1e9)
    task.origin_cluster = origin
    return GatewayContext(
        now=now,
        task=task,
        origin=origin,
        shards=shards,
        topology=topology or InterClusterTopology(),
        rng=np.random.default_rng(seed),
    )


class TestShardPressure:
    def test_counts_outstanding_per_live_machine(self):
        shard = StubShard(0, "a", counts={"SLOW": 2}, in_system=4)
        assert shard_pressure(shard) == pytest.approx(2.0)

    def test_all_down_is_infinite(self):
        shard = StubShard(0, "a", counts={"SLOW": 1}, in_system=0)
        shard.cluster.machines[0].fail(0.0)
        assert shard_pressure(shard) == float("inf")


class TestLocalityFirst:
    def test_stays_home_under_threshold(self):
        shards = [
            StubShard(0, "a", counts={"SLOW": 1}, in_system=2),
            StubShard(1, "b", counts={"FAST": 4}, in_system=0),
        ]
        gateway = create_gateway("LOCALITY_FIRST", threshold=2.0)
        assert gateway.choose_cluster(make_ctx(shards, origin=0)) == 0

    def test_spills_to_least_loaded_when_saturated(self):
        shards = [
            StubShard(0, "a", counts={"SLOW": 1}, in_system=5),
            StubShard(1, "b", counts={"FAST": 1}, in_system=1),
            StubShard(2, "c", counts={"FAST": 1}, in_system=3),
        ]
        gateway = create_gateway("LOCALITY_FIRST", threshold=2.0)
        assert gateway.choose_cluster(make_ctx(shards, origin=0)) == 1

    def test_stays_if_everyone_else_is_worse(self):
        shards = [
            StubShard(0, "a", counts={"SLOW": 1}, in_system=5),
            StubShard(1, "b", counts={"FAST": 1}, in_system=9),
        ]
        gateway = create_gateway("LOCALITY_FIRST", threshold=2.0)
        assert gateway.choose_cluster(make_ctx(shards, origin=0)) == 0

    def test_rejects_negative_threshold(self):
        with pytest.raises(ConfigurationError):
            create_gateway("LOCALITY_FIRST", threshold=-1.0)


class TestLeastLoaded:
    def test_picks_minimum_pressure(self):
        shards = [
            StubShard(0, "a", counts={"SLOW": 1}, in_system=3),
            StubShard(1, "b", counts={"FAST": 2}, in_system=1),
        ]
        gateway = create_gateway("LEAST_LOADED")
        assert gateway.choose_cluster(make_ctx(shards, origin=0)) == 1

    def test_tie_prefers_origin(self):
        shards = [
            StubShard(0, "a", counts={"SLOW": 1}, in_system=1),
            StubShard(1, "b", counts={"FAST": 1}, in_system=1),
        ]
        gateway = create_gateway("LEAST_LOADED")
        assert gateway.choose_cluster(make_ctx(shards, origin=1)) == 1


class TestEETAwareRemote:
    def test_offloads_to_faster_cluster_when_wan_is_cheap(self):
        shards = [
            StubShard(0, "a", counts={"SLOW": 1}),
            StubShard(1, "b", counts={"FAST": 1}),
        ]
        topo = InterClusterTopology()
        topo.set_link("a", "b", 0.5)  # 0.5 + 2.0 < 4.0: offload wins
        gateway = create_gateway("EET_AWARE_REMOTE")
        assert gateway.choose_cluster(make_ctx(shards, topology=topo)) == 1

    def test_stays_home_when_wan_dominates(self):
        shards = [
            StubShard(0, "a", counts={"SLOW": 1}),
            StubShard(1, "b", counts={"FAST": 1}),
        ]
        topo = InterClusterTopology()
        topo.set_link("a", "b", 3.0)  # 3.0 + 2.0 > 4.0: stay home
        gateway = create_gateway("EET_AWARE_REMOTE")
        assert gateway.choose_cluster(make_ctx(shards, topology=topo)) == 0

    def test_bandwidth_term_uses_task_payload(self):
        shards = [
            StubShard(0, "a", counts={"SLOW": 1}),
            StubShard(1, "b", counts={"FAST": 1}),
        ]
        # data_in=10 MB over 4 MB/s = 2.5 s: 2.5 + 2.0 > 4.0, stay home.
        topo = InterClusterTopology()
        topo.set_link("a", "b", 0.0, 4.0)
        gateway = create_gateway("EET_AWARE_REMOTE")
        assert gateway.choose_cluster(make_ctx(shards, topology=topo)) == 0


class TestRandomSplit:
    def test_never_routes_to_zero_weight(self):
        shards = [
            StubShard(0, "a", counts={"SLOW": 1}, weight=1.0),
            StubShard(1, "b", counts={"FAST": 1}, weight=0.0),
        ]
        gateway = create_gateway("RANDOM_SPLIT")
        ctx = make_ctx(shards)
        assert all(gateway.choose_cluster(ctx) == 0 for _ in range(50))

    def test_explicit_weights_override(self):
        shards = [
            StubShard(0, "a", counts={"SLOW": 1}, weight=1.0),
            StubShard(1, "b", counts={"FAST": 1}, weight=0.0),
        ]
        gateway = create_gateway("RANDOM_SPLIT", weights=[0.0, 1.0])
        assert gateway.choose_cluster(make_ctx(shards)) == 1

    def test_weight_length_mismatch_is_an_error(self):
        shards = [StubShard(0, "a", counts={"SLOW": 1})]
        gateway = create_gateway("RANDOM_SPLIT", weights=[0.5, 0.5])
        with pytest.raises(SchedulingError):
            gateway.choose_cluster(make_ctx(shards))

    def test_rejects_bad_weights(self):
        with pytest.raises(ConfigurationError):
            create_gateway("RANDOM_SPLIT", weights=[])
        with pytest.raises(ConfigurationError):
            create_gateway("RANDOM_SPLIT", weights=[-1.0, 2.0])
        with pytest.raises(ConfigurationError):
            create_gateway("RANDOM_SPLIT", weights=[0.0, 0.0])


class TestRegistry:
    def test_lookup_is_case_and_hyphen_insensitive(self):
        assert gateway_class("least-loaded").name == "LEAST_LOADED"
        assert gateway_class("Locality_First").name == "LOCALITY_FIRST"
        assert gateway_class("eetremote").name == "EET_AWARE_REMOTE"

    def test_unknown_gateway_error(self):
        with pytest.raises(UnknownGatewayError):
            gateway_class("TELEPORT")

    def test_bad_params_raise_configuration_error(self):
        with pytest.raises(ConfigurationError):
            create_gateway("LEAST_LOADED", not_a_param=1)
