"""Mid-queue migration: eviction policies, conservation, shared WAN pipes.

The deterministic fixture below is built so each in-WAN cancellation phase
(queued-for-link, serialising, propagating) is hit by exactly one migrated
task, which makes the link's energy accounting assert the *phase* each task
died in — queued pays nothing, serving pays the crossed fraction,
propagating pays the full payload.
"""

import numpy as np
import pytest

from repro.core.config import Scenario
from repro.core.errors import (
    ConfigurationError,
    UnknownEvictionPolicyError,
)
from repro.core.events import EventType
from repro.federation import ClusterSpec, FederationSpec, MigrationSpec
from repro.machines.eet import EETMatrix
from repro.net import InterClusterTopology, WanManager
from repro.net.wan import TransferPhase
from repro.core.event_queue import EventQueue
from repro.scenarios import build_scenario
from repro.scheduling.federation import (
    DeadlineSlackEviction,
    EETGainEviction,
    LongestWaitEviction,
    MigrationContext,
    available_evictions,
    create_eviction,
    eviction_class,
)
from repro.tasks.task import Task
from repro.tasks.task_type import TaskType
from repro.tasks.workload import Workload


# -- MigrationSpec surface ---------------------------------------------------------------


class TestMigrationSpec:
    def test_defaults_round_trip(self):
        spec = MigrationSpec()
        assert MigrationSpec.from_dict(spec.to_dict()) == spec

    def test_rich_spec_round_trips(self):
        spec = MigrationSpec(
            policy="DEADLINE_SLACK",
            policy_params={"margin": 2.0},
            interval=5.0,
            pressure_gap=0.25,
            batch_max=6,
            min_queue=3,
        )
        assert MigrationSpec.from_dict(spec.to_dict()) == spec

    def test_watermark_spec_round_trips(self):
        spec = MigrationSpec(
            policy="LONGEST_WAIT",
            interval=3.0,
            high_watermark=2.5,
            low_watermark=1.0,
        )
        data = spec.to_dict()
        assert data["high_watermark"] == 2.5
        assert data["low_watermark"] == 1.0
        assert MigrationSpec.from_dict(data) == spec
        # Watermark-free specs keep their legacy wire form: no new keys.
        plain = MigrationSpec().to_dict()
        assert "high_watermark" not in plain
        assert "low_watermark" not in plain

    def test_scenario_json_round_trip_preserves_watermarks(self):
        scenario = build_scenario("fed_adaptive")
        rebuilt = Scenario.from_json(scenario.to_json())
        assert rebuilt.federation.migration == scenario.federation.migration
        assert rebuilt.federation.migration.high_watermark == 2.5
        assert rebuilt.federation.migration.low_watermark == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval": 0.0},
            {"interval": -1.0},
            {"pressure_gap": -0.1},
            {"batch_max": 0},
            {"min_queue": 0},
            {"policy": ""},
            {"high_watermark": 2.0},  # both-or-neither
            {"low_watermark": 1.0},
            {"high_watermark": 1.0, "low_watermark": 2.0},  # high < low
            {"high_watermark": 1.0, "low_watermark": -0.5},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            MigrationSpec(**kwargs)

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="intervall"):
            MigrationSpec.from_dict({"policy": "LONGEST_WAIT", "intervall": 3})

    def test_federation_spec_carries_migration(self):
        federation = FederationSpec(
            clusters=[
                ClusterSpec("a", {"m": 1}),
                ClusterSpec("b", {"m": 1}),
            ],
            migration=MigrationSpec(policy="EET_GAIN", interval=7.0),
        )
        rebuilt = FederationSpec.from_dict(federation.to_dict())
        assert rebuilt.migration == federation.migration
        # And omitting it stays omitted (legacy specs load unchanged).
        plain = FederationSpec(clusters=[ClusterSpec("a", {"m": 1})])
        assert "migration" not in plain.to_dict()
        assert FederationSpec.from_dict(plain.to_dict()).migration is None

    def test_scenario_json_round_trip_preserves_migration(self):
        scenario = build_scenario("fed_rebalance")
        rebuilt = Scenario.from_json(scenario.to_json())
        assert rebuilt.federation.migration == scenario.federation.migration

    def test_with_migration_requires_federation(self):
        scenario = build_scenario("satellite_imaging")
        with pytest.raises(ConfigurationError):
            scenario.with_migration("LONGEST_WAIT")

    def test_with_migration_off_and_on(self):
        scenario = build_scenario("fed_rebalance")
        off = scenario.with_migration(None)
        assert off.federation.migration is None
        on = off.with_migration("DEADLINE_SLACK", interval=4.0)
        assert on.federation.migration.policy == "DEADLINE_SLACK"
        assert on.federation.migration.interval == 4.0
        # Original untouched.
        assert scenario.federation.migration.policy == "LONGEST_WAIT"
        with pytest.raises(ConfigurationError):
            scenario.with_migration(None, interval=3.0)


# -- eviction policy registry + unit behaviour ------------------------------------------


class _StubCluster:
    def __init__(self, completion):
        self._completion = completion

    def completion_times(self, task, now):
        return np.asarray([self._completion])


class _StubShard:
    def __init__(self, index, name, completion=10.0):
        self.index = index
        self.name = name
        self.weight = 1.0
        self.cluster = _StubCluster(completion)
        self.in_system = 0


def _context(candidates, *, limit=8, src_completion=50.0, dst_completion=1.0):
    topology = InterClusterTopology()
    topology.set_link("src", "dst", latency=1.0, bandwidth=1.0)
    return MigrationContext(
        now=10.0,
        source=_StubShard(0, "src", src_completion),
        destination=_StubShard(1, "dst", dst_completion),
        candidates=candidates,
        limit=limit,
        topology=topology,
    )


def _task(task_id, *, arrival=0.0, deadline=1000.0, mb=4.0):
    return Task(
        id=task_id,
        task_type=TaskType("T", 0, data_in=mb),
        arrival_time=arrival,
        deadline=deadline,
    )


class TestEvictionRegistry:
    def test_stock_policies_registered(self):
        names = available_evictions()
        for name in ("LONGEST_WAIT", "DEADLINE_SLACK", "EET_GAIN"):
            assert name in names

    def test_aliases_and_case_folding(self):
        assert eviction_class("longest-wait") is LongestWaitEviction
        assert eviction_class("slack") is DeadlineSlackEviction
        assert eviction_class("gain") is EETGainEviction

    def test_unknown_policy_raises(self):
        with pytest.raises(UnknownEvictionPolicyError):
            create_eviction("SHORTEST_JOB_NEXT")

    def test_bad_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            create_eviction("DEADLINE_SLACK", margin=0.5)
        with pytest.raises(ConfigurationError):
            create_eviction("EET_GAIN", min_gain=-1.0)


class TestEvictionPolicies:
    def test_longest_wait_orders_by_queue_age(self):
        tasks = [
            _task(0, arrival=5.0),
            _task(1, arrival=1.0),
            _task(2, arrival=3.0),
        ]
        ctx = _context(tasks, limit=2)
        selected = LongestWaitEviction().select(ctx)
        assert [t.id for t in selected] == [1, 2]

    def test_deadline_slack_skips_tasks_that_die_in_flight(self):
        # WAN delay is latency + mb/bw = 1 + 4/1 = 5 s; margin 1.5 ⇒ a task
        # needs ≥ 7.5 s of slack at now=10 to be worth shipping.
        doomed = _task(0, deadline=14.0)    # 4 s slack: would die in flight
        viable = _task(1, deadline=30.0)    # 20 s slack
        richer = _task(2, deadline=60.0)    # 50 s slack: most slack first
        ctx = _context([doomed, viable, richer])
        selected = DeadlineSlackEviction().select(ctx)
        assert [t.id for t in selected] == [2, 1]

    def test_eet_gain_requires_positive_gain(self):
        # Source completion 50, destination 1 + WAN 5 ⇒ gain 44 (ship it);
        # with a slow destination the gain goes negative (keep it).
        win = _context([_task(0)])
        assert [t.id for t in EETGainEviction().select(win)] == [0]
        lose = _context([_task(0)], src_completion=2.0, dst_completion=100.0)
        assert EETGainEviction().select(lose) == []
        bar = EETGainEviction(min_gain=100.0)
        assert bar.select(win) == []


# -- deterministic per-phase cancellation fixture ---------------------------------------


def _phase_scenario():
    """2 clusters, 1 machine each; 5 tasks; 3 migrations die in the WAN.

    access_cpu takes 100 s per task (nothing drains locally), relief_cpu
    takes 1 s. The FIFO uplink moves 1 MB/s with 2 s latency and charges
    1 J/MB; payloads are 4 MB, so serialisation takes 4 s. At the first
    rebalance tick (t=1) tasks 2, 3, 4 are evicted:

    * task 2 serialises 1→5, propagates 5→7; deadline 6.5 ⇒ dies PROPAGATING
      (full 4 J charged — the bits crossed);
    * task 3 queues 1→5, serialises 5→9; deadline 6 ⇒ dies SERVING at 6
      (1 of 4 MB crossed ⇒ 1 J);
    * task 4 queues from 1; deadline 3 ⇒ dies QUEUED (0 J).

    Tasks 0 and 1 complete locally at t=100 and t=200.
    """
    task_type = TaskType("T", 0, data_in=4.0)
    eet = EETMatrix(
        np.array([[100.0, 1.0]]), [task_type], ["access_cpu", "relief_cpu"]
    )
    tasks = [
        Task(id=0, task_type=task_type, arrival_time=0.0, deadline=1000.0),
        Task(id=1, task_type=task_type, arrival_time=0.0, deadline=1000.0),
        Task(id=2, task_type=task_type, arrival_time=0.0, deadline=6.5),
        Task(id=3, task_type=task_type, arrival_time=0.0, deadline=6.0),
        Task(id=4, task_type=task_type, arrival_time=0.0, deadline=3.0),
    ]
    topology = InterClusterTopology()
    topology.set_link(
        "access", "relief", latency=2.0, bandwidth=1.0,
        contention="fifo", energy_per_mb=1.0,
    )
    federation = FederationSpec(
        clusters=[
            ClusterSpec("access", {"access_cpu": 1}, weight=1.0),
            ClusterSpec("relief", {"relief_cpu": 1}, weight=0.0),
        ],
        gateway="LOCALITY_FIRST",
        gateway_params={"threshold": 1000.0},
        topology=topology,
        migration=MigrationSpec(
            policy="LONGEST_WAIT",
            interval=1.0,
            pressure_gap=0.0,
            batch_max=10,
            min_queue=1,
        ),
    )
    return Scenario(
        eet=eet,
        machine_counts={"access_cpu": 1, "relief_cpu": 1},
        scheduler="MM",
        queue_capacity=1.0,
        workload=Workload([task_type], tasks),
        federation=federation,
        seed=7,
        name="phase-fixture",
    )


class TestCancellationConservation:
    @pytest.fixture(scope="class")
    def result(self):
        return _phase_scenario().run()

    def test_every_phase_cancelled_exactly_once(self, result):
        stats = result.migration_stats
        assert stats.attempted == 3
        assert stats.delivered == 0
        assert stats.cancelled_in_flight == 3
        usage = result.wan_links["access<->relief"]
        assert usage.abandoned == 3
        assert usage.delivered == 0
        # The energy meter encodes the phase each task died in: queued pays
        # nothing, serving pays the crossed 1 MB, propagating the full 4 MB.
        assert usage.transfer_energy == pytest.approx(5.0)
        # Serving burned 1 s of pipe (5→6); task 2's full serialisation 4 s.
        assert usage.busy_time == pytest.approx(5.0)

    def test_nothing_lost_or_double_counted(self, result):
        summary = result.summary
        assert summary.total_tasks == 5
        assert summary.completed == 2
        assert summary.cancelled == 3
        assert summary.missed == 0
        assert (
            summary.completed + summary.cancelled + summary.missed
            == summary.total_tasks
        )

    def test_cancelled_tasks_accounted_at_destination(self, result):
        # Evicted tasks are re-homed before they travel, so the in-flight
        # cancellations land in the destination cluster's books.
        assert result.per_cluster["relief"].cancelled == 3
        assert result.per_cluster["access"].cancelled == 0

    def test_deterministic_replay(self, result):
        again = _phase_scenario().run()
        assert again.summary == result.summary
        assert again.migration_stats == result.migration_stats
        assert again.events_processed == result.events_processed


# -- migrations and offloads share one pipe ---------------------------------------------


class TestSharedLinkContention:
    def _manager(self):
        topology = InterClusterTopology()
        topology.set_link(
            "edge", "cloud", latency=1.0, bandwidth=1.0, contention="fifo"
        )
        events = EventQueue()
        return WanManager(topology, events, ["edge", "cloud"]), events

    def test_migration_queues_behind_offload(self):
        wan, events = self._manager()
        offload = wan.submit(_task(0), 0, 1, 0.0)
        migration = wan.submit(
            _task(1), 0, 1, 0.0, kind=EventType.TASK_MIGRATION
        )
        # Same physical channel: one pipe, whoever is sending.
        assert migration.channel is offload.channel
        assert offload.phase is TransferPhase.SERVING
        assert migration.phase is TransferPhase.QUEUED
        deliveries = {}
        while events:
            event = events.pop()
            if event.type is EventType.LINK_TRANSFER:
                WanManager.on_link_event(event, event.time)
            else:
                deliveries[event.payload.id] = (event.type, event.time)
        # 4 MB at 1 MB/s: the offload serialises 0→4 (+1 s latency); the
        # migration cannot start before 4, so it lands a full service later
        # — under PR 3's overlap model both would have arrived at t=5.
        assert deliveries[0] == (EventType.TASK_ARRIVAL, 5.0)
        assert deliveries[1] == (EventType.TASK_MIGRATION, 9.0)

    def test_offload_queues_behind_migration(self):
        wan, events = self._manager()
        migration = wan.submit(
            _task(0), 0, 1, 0.0, kind=EventType.TASK_MIGRATION
        )
        offload = wan.submit(_task(1), 0, 1, 0.0)
        assert migration.phase is TransferPhase.SERVING
        assert offload.phase is TransferPhase.QUEUED


class TestInstantLinkMigration:
    def test_zero_delay_link_delivers_inline_and_conserves(self):
        scenario = _phase_scenario()
        # Swap the narrow FIFO uplink for a zero-delay link: migrations are
        # delivered inline (no WAN events) and everything completes on the
        # fast relief machine.
        from dataclasses import replace

        federation = replace(
            scenario.federation, topology=InterClusterTopology()
        )
        result = replace(scenario, federation=federation).run()
        stats = result.migration_stats
        assert stats.attempted == stats.delivered
        assert stats.cancelled_in_flight == 0
        summary = result.summary
        assert (
            summary.completed + summary.cancelled + summary.missed
            == summary.total_tasks
        )


# -- migrated-task result views ---------------------------------------------------------


class TestMigrationViews:
    @pytest.fixture(scope="class")
    def result(self):
        return build_scenario("fed_rebalance", duration=150.0).run()

    def test_matrix_totals_match_stats(self, result):
        total = sum(
            count
            for row in result.migrations.values()
            for count in row.values()
        )
        assert total == result.migration_stats.attempted == result.migrated

    def test_completed_migrated_tasks_have_energy_split(self, result):
        stats = result.migration_stats
        assert stats.completed > 0
        assert stats.migrated_task_energy > 0
        assert stats.migration_wan_energy > 0
        assert stats.energy_per_migrated_task > 0
        per_task = (
            stats.migrated_task_energy + stats.migration_wan_energy
        ) / stats.completed
        assert stats.energy_per_migrated_task == pytest.approx(per_task)

    def test_migrated_tasks_counted_once_in_task_records(self, result):
        migrated_ids = set()
        for row in result.task_records:
            assert row["status"] in ("completed", "cancelled", "missed")
            migrated_ids.add(row["task_id"])
        assert len(migrated_ids) == result.summary.total_tasks

    def test_to_text_renders_migration_section(self, result):
        text = result.to_text()
        assert "migrated > dst" in text
        assert "cancelled in flight" in text

    def test_migration_metrics_reach_campaign_extras(self):
        from repro.experiments.runner import _execute_cell
        from repro.experiments.campaign import RunSpec

        record = _execute_cell(
            RunSpec(
                campaign="c",
                scenario="fed_rebalance",
                overrides={"duration": 100.0},
                label="fed_rebalance",
                scheduler="MM",
                scheduler_params={},
                seed=0,
                run_seed=1,
            )
        )
        assert record.extras["migrations_attempted"] > 0
        assert (
            record.extras["migrations_delivered"]
            + record.extras["migrations_cancelled_in_flight"]
            == record.extras["migrations_attempted"]
        )
