"""Hierarchy semantics: paths, trees, rollups, relays, refusals.

The fixture tree used throughout::

    *
    ├── region            (uplink: 0.5 s, 1 MB/s FIFO, 2 J/MB)
    │   ├── site-a        (1 SLOW machine; arrivals land here)
    │   └── site-b        (1 SLOW machine)
    └── cloud             (FAST machines, arrival weight 0)

All site/cloud uplinks are latency-only (0.25 s), so the region uplink is
the single contended resource: every site→cloud offload pays it, 4 MB at
1 MB/s, FIFO — which makes queueing, ordering and cancellation exactly
computable by hand.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.core.config import Scenario
from repro.core.errors import ConfigurationError
from repro.federation import ClusterSpec, FederationSpec, RegionSpec
from repro.federation.hierarchy import ClusterPath, FederationTree
from repro.federation.spec import MigrationSpec
from repro.machines.eet import EETMatrix
from repro.metrics.rollup import TreeRollup
from repro.net import InterClusterTopology
from repro.net.topology import Link
from repro.scheduling.federation import TreePressureGateway
from repro.tasks.task import Task
from repro.tasks.task_type import TaskType
from repro.tasks.workload import Workload


def tree_spec(*, site_b_weight=0.0, gateway="TREE_PRESSURE", **spec_kwargs):
    return FederationSpec(
        children=[
            RegionSpec(
                name="region",
                uplink=Link(0.5, 1.0, contention="fifo", energy_per_mb=2.0),
                children=[
                    ClusterSpec(
                        name="site-a",
                        machine_counts={"SLOW": 1},
                        weight=1.0,
                        uplink=Link(0.25, 0.0),
                    ),
                    ClusterSpec(
                        name="site-b",
                        machine_counts={"SLOW": 1},
                        weight=site_b_weight,
                        uplink=Link(0.25, 0.0),
                    ),
                ],
            ),
            ClusterSpec(
                name="cloud",
                machine_counts={"FAST": 1},
                weight=0.0,
                uplink=Link(0.25, 0.0),
            ),
        ],
        gateway=gateway,
        **spec_kwargs,
    )


def hier_scenario(tasks, *, n_cloud=1, site_b_weight=0.0,
                  gateway="TREE_PRESSURE", seed=3):
    """Explicit-workload scenario over the module fixture tree."""
    task_types = [TaskType("T1", 0, data_in=4.0)]
    eet = EETMatrix(np.array([[10.0, 1.0]]), task_types, ["SLOW", "FAST"])
    workload = Workload(
        task_types=task_types,
        tasks=[
            Task(id=i, task_type=task_types[0], arrival_time=a, deadline=d)
            for i, (a, d) in enumerate(tasks)
        ],
    )
    federation = tree_spec(site_b_weight=site_b_weight, gateway=gateway)
    federation.clusters[2].machine_counts = {"FAST": n_cloud}
    return Scenario(
        eet=eet,
        machine_counts={"SLOW": 2, "FAST": n_cloud},
        scheduler="MECT",
        workload=workload,
        federation=federation,
        seed=seed,
        name="hier-test",
    )


class TestClusterPath:
    def test_wire_round_trip(self):
        path = ClusterPath(("eu", "paris", "edge-0"))
        assert path.wire == "eu/paris/edge-0"
        assert ClusterPath.from_wire(path.wire) == path
        assert isinstance(path, tuple)

    def test_rejects_empty_path(self):
        with pytest.raises(ConfigurationError, match="at least one segment"):
            ClusterPath(())

    @pytest.mark.parametrize("segment", ["", "a/b"])
    def test_rejects_bad_segments(self, segment):
        with pytest.raises(ConfigurationError, match="segment"):
            ClusterPath(("eu", segment))


class TestSpecValidation:
    def test_clusters_derived_in_preorder_leaf_order(self):
        spec = tree_spec()
        assert spec.names == ["site-a", "site-b", "cloud"]

    def test_passing_the_exact_leaf_list_is_allowed(self):
        template = tree_spec()
        spec = FederationSpec(
            clusters=list(template.clusters),
            children=template.children,
            gateway="TREE_PRESSURE",
        )
        assert spec.names == template.names

    def test_passing_a_different_cluster_list_is_refused(self):
        template = tree_spec()
        with pytest.raises(ConfigurationError, match="derived from"):
            FederationSpec(
                clusters=list(reversed(template.clusters)),
                children=template.children,
            )

    def test_duplicate_node_names_are_refused(self):
        with pytest.raises(ConfigurationError, match="globally unique"):
            FederationSpec(
                children=[
                    RegionSpec(
                        name="eu",
                        children=[
                            ClusterSpec(name="eu", machine_counts={"M": 1})
                        ],
                    )
                ]
            )

    @pytest.mark.parametrize("name", ["a/b", "a->b", "*"])
    def test_reserved_characters_are_refused(self, name):
        with pytest.raises(ConfigurationError):
            FederationSpec(
                children=[ClusterSpec(name=name, machine_counts={"M": 1})]
            )

    def test_migration_is_refused(self):
        with pytest.raises(ConfigurationError, match="migration"):
            tree_spec(migration=MigrationSpec())

    def test_explicit_topology_links_are_refused(self):
        topo = InterClusterTopology()
        topo.set_link("site-a", "cloud", 1.0, 10.0)
        with pytest.raises(ConfigurationError, match="uplink"):
            tree_spec(topology=topo)

    def test_empty_region_is_refused(self):
        with pytest.raises(ConfigurationError, match="at least one child"):
            RegionSpec(name="empty")

    def test_json_round_trip_is_stable(self):
        spec = tree_spec()
        wire = json.dumps(spec.to_dict(), sort_keys=True)
        rebuilt = FederationSpec.from_dict(json.loads(wire))
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == wire
        assert rebuilt.names == spec.names
        # Hierarchical JSON omits the derived fields entirely.
        assert "clusters" not in spec.to_dict()
        assert "migration" not in spec.to_dict()

    def test_from_dict_error_names_both_spellings(self):
        with pytest.raises(ConfigurationError, match="children"):
            FederationSpec.from_dict({"gateway": "TREE_PRESSURE"})


class TestFederationTree:
    def test_node_namespace_leaves_first_then_root(self):
        tree = FederationTree(tree_spec())
        assert tree.node_names[: tree.n_leaves] == [
            "site-a", "site-b", "cloud",
        ]
        assert tree.node_names[tree.root] == "*"
        assert tree.node_names[tree.n_leaves + 1 :] == ["region"]
        assert [p.wire for p in tree.leaf_paths] == [
            "region/site-a", "region/site-b", "cloud",
        ]

    def test_routes_climb_to_the_lca_only(self):
        tree = FederationTree(tree_spec())
        region = tree.node_names.index("region")
        # Siblings meet at their own parent, never at the root.
        assert tree.route(0, 1) == (0, region, 1)
        # Cross-subtree routes pass through the root.
        assert tree.route(0, 2) == (0, region, tree.root, 2)
        assert tree.route(2, 1) == (2, tree.root, region, 1)
        assert tree.route(0, 0) == (0,)

    def test_hop_topology_has_only_uplink_edges(self):
        tree = FederationTree(tree_spec())
        labels = {
            tuple(sorted(edge)) for edge in tree.hop_topology.links
        }
        assert labels == {
            ("region", "site-a"),
            ("region", "site-b"),
            ("*", "region"),
            ("*", "cloud"),
        }
        # The default link is inert: no phantom leaf-to-leaf channels.
        assert tree.hop_topology.default == Link()

    def test_leaves_under_and_depth(self):
        tree = FederationTree(tree_spec())
        region = tree.node_names.index("region")
        assert tree.leaves_under[tree.root] == (0, 1, 2)
        assert tree.leaves_under[region] == (0, 1)
        assert tree.depth(tree.root) == 0
        assert tree.depth(region) == 1
        assert tree.depth(0) == 2

    def test_path_transfer_energy_sums_the_hops(self):
        tree = FederationTree(tree_spec())
        # site-a -> cloud: only the region uplink carries a J/MB price.
        assert tree.path_transfer_energy(0, 2, 4.0) == pytest.approx(8.0)
        assert tree.path_transfer_energy(0, 1, 4.0) == pytest.approx(0.0)
        assert tree.path_transfer_energy(2, 2, 4.0) == 0.0

    def test_flat_spec_is_refused(self):
        flat = FederationSpec(
            clusters=[ClusterSpec(name="only", machine_counts={"M": 1})]
        )
        with pytest.raises(ConfigurationError, match="hierarchical"):
            FederationTree(flat)


class TestTreeRollup:
    PATHS = [("eu", "paris"), ("eu", "lyon"), ("us",)]
    STATS = [{"x": 1.0, "y": 2.0}, {"x": 10.0}, {"x": 100.0, "y": 5.0}]

    def test_interior_nodes_are_leaf_sums(self):
        rollup = TreeRollup.from_leaves(self.PATHS, self.STATS)
        assert rollup.root.stats == {"x": 111.0, "y": 7.0}
        assert rollup.at("eu").stats == {"x": 11.0, "y": 2.0}
        assert rollup.at("eu").n_leaves == 2
        assert rollup.at("us").stats == {"x": 100.0, "y": 5.0}
        assert rollup.root.n_leaves == 3
        assert len(rollup) == 5  # root, eu, eu/paris, eu/lyon, us

    def test_iteration_is_parents_before_children(self):
        rollup = TreeRollup.from_leaves(self.PATHS, self.STATS)
        wires = [n.wire for n in rollup]
        assert wires == ["*", "eu", "eu/lyon", "eu/paris", "us"]
        assert [n.wire for n in rollup.leaves] == [
            "eu/lyon", "eu/paris", "us",
        ]
        assert [n.wire for n in rollup.children_of(rollup.root)] == [
            "eu", "us",
        ]

    def test_as_dict_and_text(self):
        rollup = TreeRollup.from_leaves(self.PATHS, self.STATS)
        assert rollup.as_dict()["eu/paris"] == {"x": 1.0, "y": 2.0}
        text = rollup.to_text()
        lines = text.splitlines()
        assert lines[0].split() == ["node", "x", "y"]
        assert lines[1].startswith("*")
        assert any(line.startswith("    lyon") for line in lines)

    def test_unknown_wire_raises(self):
        rollup = TreeRollup.from_leaves(self.PATHS, self.STATS)
        with pytest.raises(KeyError, match="asia"):
            rollup.at("asia")

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="stat mappings"):
            TreeRollup.from_leaves(self.PATHS, self.STATS[:2])

    def test_duplicate_leaf_raises(self):
        with pytest.raises(ValueError, match="duplicate"):
            TreeRollup.from_leaves(
                [("a",), ("a",)], [{"x": 1.0}, {"x": 2.0}]
            )

    def test_leaf_prefix_of_leaf_raises(self):
        with pytest.raises(ValueError, match="prefix"):
            TreeRollup.from_leaves(
                [("a",), ("a", "b")], [{"x": 1.0}, {"x": 2.0}]
            )


class TestRefusals:
    def test_flat_gateway_is_refused_by_the_tree_engine(self):
        scenario = hier_scenario([(0.0, 100.0)], gateway="LEAST_LOADED")
        with pytest.raises(ConfigurationError, match="TREE_PRESSURE"):
            scenario.build_simulator()

    def test_parallel_execution_is_refused(self):
        scenario = hier_scenario([(0.0, 100.0)])
        with pytest.raises(ConfigurationError, match="parallel federated"):
            scenario.build_simulator(parallel_workers=2)

    @pytest.mark.parametrize(
        "params", [{"wan_mb_weight": -1.0}, {"migration_weight": -0.5}]
    )
    def test_gateway_rejects_negative_weights(self, params):
        with pytest.raises(ConfigurationError, match=">= 0"):
            TreePressureGateway(**params)


class TestHierarchicalExecution:
    def test_multi_hop_offload_pays_every_uplink(self):
        """t=0 stays local (all idle → origin); t=1 offloads to the idle
        cloud: 0.25 s site hop + (4 MB / 1 MB/s + 0.5 s) region hop +
        0.25 s cloud hop = 5.0 s of WAN, then 1 s on the FAST machine."""
        result = hier_scenario([(0.0, 100.0), (1.0, 100.0)]).run()
        assert result.offloaded == 1
        assert result.routing["region/site-a"]["cloud"] == 1
        assert result.wan_time_total == pytest.approx(5.0)
        # Task 0: SLOW for 10 s. Task 1: delivered at 6.0, done at 7.0.
        assert result.summary.makespan == pytest.approx(10.0)
        assert result.per_cluster["cloud"].completed == 1
        # Only the region uplink carries J/MB: 4 MB * 2 J/MB.
        assert result.energy_split.wan_transfer_energy == pytest.approx(8.0)
        rollup = result.tree
        assert rollup.at("cloud").stats["wan_delivered"] == 1
        assert rollup.at("region").stats["completed"] == 1
        assert rollup.root.stats["completed"] == 2

    def test_shared_uplink_is_fifo_across_descendants(self):
        """Three offloads funnel into the region uplink; each serialises
        4 s, so deliveries space out in submission order while the tail
        waits its full queue time."""
        scenario = hier_scenario(
            [(0.0, 100.0), (0.1, 100.0), (0.2, 100.0), (0.4, 100.0)],
            n_cloud=3,
        )
        sim = scenario.build_simulator()
        region = sim.tree.node_names.index("region")
        root = sim.tree.root
        submitted, delivered = [], []
        orig_submit = sim._wan.submit

        def spy_submit(task, src, dst, now, **kwargs):
            if (src, dst) == (region, root):
                submitted.append(task.id)
            return orig_submit(task, src, dst, now, **kwargs)

        sim._wan.submit = spy_submit
        cloud_shard = sim.shards[2]
        orig_arrival = cloud_shard._on_arrival

        def spy_arrival(task):
            delivered.append((sim.clock._now, task.id))
            orig_arrival(task)

        cloud_shard._on_arrival = spy_arrival
        result = sim.run()
        # Tasks 1, 2, 4... — whichever offloaded — crossed the shared
        # uplink and reached the cloud in exactly submission order.
        assert len(submitted) >= 2
        assert [task_id for _, task_id in delivered] == submitted
        times = [t for t, _ in delivered]
        assert times == sorted(times)
        # FIFO serialisation: consecutive deliveries are >= 4 s apart
        # while the queue is non-empty (4 MB at 1 MB/s each).
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap >= 4.0 - 1e-9 for gap in gaps)
        usage = result.wan_links["region<->*"]
        assert usage.delivered == len(submitted)
        # One transfer serialises at a time: busy time is the exact sum.
        assert usage.busy_time == pytest.approx(4.0 * len(submitted))

    def test_deadline_in_flight_is_cancelled_and_conserved(self):
        """Task 1 offloads at t=1 and dies at t=3, mid region-uplink
        serialisation: terminal state lands on the destination shard and
        the WAN conservation counters record the loss exactly."""
        result = hier_scenario([(0.0, 100.0), (1.0, 3.0)]).run()
        assert result.summary.cancelled == 1
        assert result.per_cluster["cloud"].cancelled == 1
        rollup = result.tree
        cloud = rollup.at("cloud").stats
        assert cloud["wan_attempted"] == 1
        assert cloud["wan_delivered"] == 0
        assert cloud["wan_cancelled_in_flight"] == 1
        root = rollup.root.stats
        assert root["wan_attempted"] == (
            root["wan_delivered"] + root["wan_cancelled_in_flight"]
        )

    def test_two_sites_compete_for_the_parent_uplink(self):
        """With both sites originating work, offloads from *different*
        descendants still cross the shared region uplink strictly FIFO,
        and conservation holds at every tree node."""
        tasks = [(0.25 * i, 1000.0) for i in range(24)]
        scenario = hier_scenario(tasks, n_cloud=3, site_b_weight=1.0, seed=11)
        sim = scenario.build_simulator()
        region = sim.tree.node_names.index("region")
        root = sim.tree.root
        submitted, delivered = [], []
        orig_submit = sim._wan.submit

        def spy_submit(task, src, dst, now, **kwargs):
            if (src, dst) == (region, root):
                submitted.append(task.id)
            return orig_submit(task, src, dst, now, **kwargs)

        sim._wan.submit = spy_submit
        cloud_shard = sim.shards[2]
        orig_arrival = cloud_shard._on_arrival

        def spy_arrival(task):
            delivered.append(task.id)
            orig_arrival(task)

        cloud_shard._on_arrival = spy_arrival
        result = sim.run()
        routing = result.routing
        # Both descendants actually sent work up the shared link.
        assert routing["region/site-a"]["cloud"] > 0
        assert routing["region/site-b"]["cloud"] > 0
        assert delivered == submitted
        rollup = result.tree
        for node in rollup:
            stats = node.stats
            assert stats["wan_attempted"] == (
                stats["wan_delivered"] + stats["wan_cancelled_in_flight"]
            ), node.wire
        # Interior nodes are exact sums of their children.
        region_children = rollup.children_of(rollup.at("region"))
        assert rollup.at("region").stats["routed"] == sum(
            c.stats["routed"] for c in region_children
        )

    def test_runs_are_deterministic(self):
        tasks = [(0.3 * i, 1000.0) for i in range(20)]
        a = hier_scenario(tasks, site_b_weight=1.0, seed=7).run()
        b = hier_scenario(tasks, site_b_weight=1.0, seed=7).run()
        assert a.summary.as_dict() == b.summary.as_dict()
        assert a.routing == b.routing
        assert a.tree.as_dict() == b.tree.as_dict()

    def test_result_text_uses_path_keys(self):
        result = hier_scenario([(0.0, 100.0), (1.0, 100.0)]).run()
        text = result.to_text()
        assert "region/site-a" in text
        assert "region<->*" in text


class TestFlatFallback:
    def test_tree_pressure_matches_least_loaded_on_flat_federations(self):
        """On a flat spec the tree walk degenerates to LEAST_LOADED's
        arithmetic exactly — same summaries, same routing."""
        from repro.scenarios import build_scenario

        tree = build_scenario("geo_3site", gateway="TREE_PRESSURE").run()
        flat = build_scenario("geo_3site", gateway="LEAST_LOADED").run()
        assert tree.summary.as_dict() == flat.summary.as_dict()
        assert tree.routing == flat.routing
        assert tree.tree is None
