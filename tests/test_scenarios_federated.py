"""Federated scenario presets: registration, overrides, and run sanity."""

import pytest

from repro.core.errors import ConfigurationError
from repro.scenarios import available_scenarios, build_scenario

FEDERATED_PRESETS = [
    "edge_cloud",
    "geo_3site",
    "fed_heavytail",
    "fed_congested",
    "fed_rebalance",
]


class TestRegistration:
    def test_presets_registered(self):
        names = available_scenarios()
        for name in FEDERATED_PRESETS:
            assert name in names

    def test_factories_build_federated_scenarios(self):
        for name in FEDERATED_PRESETS:
            scenario = build_scenario(name)
            assert scenario.federation is not None
            assert len(scenario.federation.clusters) >= 2
            totals = scenario.federation.total_machine_counts()
            declared = {
                k: v for k, v in dict(scenario.machine_counts).items() if v > 0
            }
            assert totals == declared


class TestOverrides:
    def test_gateway_override(self):
        scenario = build_scenario("edge_cloud", gateway="LOCALITY_FIRST")
        assert scenario.federation.gateway == "LOCALITY_FIRST"

    def test_scheduler_override_applies_to_all_clusters(self):
        scenario = build_scenario("geo_3site", scheduler="MM")
        assert scenario.scheduler == "MM"
        simulator = scenario.build_simulator()
        assert all(
            shard.scheduler.name == "MM" for shard in simulator.shards
        )

    def test_with_gateway_copy(self):
        scenario = build_scenario("edge_cloud")
        swapped = scenario.with_gateway("RANDOM_SPLIT", weights=[0.5, 0.5])
        assert swapped.federation.gateway == "RANDOM_SPLIT"
        assert swapped.federation.gateway_params == {
            "weights": [0.5, 0.5]
        }
        # Original untouched.
        assert scenario.federation.gateway == "EET_AWARE_REMOTE"

    def test_with_gateway_requires_federation(self):
        scenario = build_scenario("satellite_imaging")
        with pytest.raises(ConfigurationError):
            scenario.with_gateway("LEAST_LOADED")

    def test_partition_mismatch_rejected(self):
        import dataclasses

        scenario = build_scenario("edge_cloud")
        with pytest.raises(ConfigurationError):
            dataclasses.replace(
                scenario,
                machine_counts={"edge_cpu": 1, "cloud_cpu": 4, "cloud_gpu": 2},
            )


class TestRuns:
    @pytest.mark.parametrize("name", FEDERATED_PRESETS)
    def test_preset_runs_and_conserves(self, name):
        result = build_scenario(name, duration=120.0).run()
        summary = result.summary
        assert summary.total_tasks > 0
        assert (
            summary.completed + summary.cancelled + summary.missed
            == summary.total_tasks
        )
        assert 0.0 <= result.offload_rate <= 1.0
        assert set(result.per_cluster) == set(result.routing)

    def test_edge_cloud_arrivals_originate_at_the_edge(self):
        result = build_scenario("edge_cloud", duration=120.0).run()
        origins = result.origins_by_cluster()
        assert origins["cloud"] == 0
        assert origins["edge"] == result.summary.total_tasks

    def test_json_round_trip_preserves_federation(self):
        scenario = build_scenario("edge_cloud")
        from repro.core.config import Scenario

        rebuilt = Scenario.from_json(scenario.to_json())
        assert rebuilt.federation is not None
        assert rebuilt.federation.to_dict() == scenario.federation.to_dict()
        # And the rebuilt scenario still runs federated.
        result = rebuilt.run()
        assert hasattr(result, "per_cluster")

    def test_gateway_choice_changes_outcomes(self):
        locality = build_scenario(
            "edge_cloud", gateway="LOCALITY_FIRST", duration=150.0
        ).run()
        eet_aware = build_scenario(
            "edge_cloud", gateway="EET_AWARE_REMOTE", duration=150.0
        ).run()
        assert locality.routing != eet_aware.routing
