"""`InterClusterTopology.min_link_lookahead` — the conservative window width.

The parallel federated engine advances in windows of exactly this value, so
its contract is strict: the *minimum* over every effective directed link
between the given sites, and a hard configuration error — not a silent zero
— when any such link has no latency (a zero-delay link makes remote effects
instantaneous and conservative windowing impossible).
"""

import pytest

from repro.core.errors import ConfigurationError
from repro.net.topology import InterClusterTopology, Link


class TestMinLinkLookahead:
    def test_uniform_topology_lookahead_is_the_latency(self):
        topo = InterClusterTopology.uniform(["a", "b", "c"], latency=0.25)
        assert topo.min_link_lookahead(["a", "b", "c"]) == 0.25

    def test_minimum_over_heterogeneous_links(self):
        topo = InterClusterTopology(default=Link(1.0))
        topo.set_link("a", "b", 0.8)
        topo.set_link("b", "c", 0.05)
        assert topo.min_link_lookahead(["a", "b", "c"]) == 0.05

    def test_directed_links_both_directions_count(self):
        topo = InterClusterTopology(symmetric=False, default=Link(1.0))
        topo.set_link("a", "b", 0.9)
        topo.set_link("b", "a", 0.02)
        assert topo.min_link_lookahead(["a", "b"]) == 0.02

    def test_only_named_clusters_are_considered(self):
        # A zero-latency link to a site outside the federation is harmless.
        topo = InterClusterTopology(default=Link(0.5))
        topo.set_link("a", "elsewhere", 0.0)
        assert topo.min_link_lookahead(["a", "b"]) == 0.5

    def test_zero_latency_link_is_a_configuration_error(self):
        topo = InterClusterTopology(default=Link(0.5))
        topo.set_link("a", "b", 0.0)
        with pytest.raises(ConfigurationError, match="zero latency"):
            topo.min_link_lookahead(["a", "b", "c"])

    def test_default_zero_latency_topology_is_rejected(self):
        # The all-defaults topology has free links everywhere: serial-only.
        topo = InterClusterTopology()
        with pytest.raises(ConfigurationError, match="zero latency"):
            topo.min_link_lookahead(["a", "b"])

    def test_fewer_than_two_clusters_is_a_configuration_error(self):
        topo = InterClusterTopology.uniform(["a", "b"], latency=0.5)
        with pytest.raises(ConfigurationError, match="at least two"):
            topo.min_link_lookahead(["a"])
        with pytest.raises(ConfigurationError, match="at least two"):
            topo.min_link_lookahead([])
