"""Cross-traffic generators: determinism, epoch math, spec round-trips."""

import pytest

from repro.core.errors import ConfigurationError
from repro.net.crosstraffic import (
    MAX_UTILISATION,
    DiurnalTraffic,
    MmppTraffic,
    cross_traffic_from_spec,
)
from repro.net.topology import Link


class TestDiurnal:
    def test_piecewise_constant_over_epochs(self):
        traffic = DiurnalTraffic(period=24.0, step=1.0)
        # Every instant inside an epoch sees the epoch-start value.
        assert traffic.utilisation_at(3.0) == traffic.utilisation_at(3.999)
        assert traffic.utilisation_at(3.0) == traffic.utilisation(3.0)

    def test_default_step_is_period_over_24(self):
        assert DiurnalTraffic(period=48.0).effective_step == 2.0
        assert DiurnalTraffic(period=48.0, step=5.0).effective_step == 5.0

    def test_next_boundary_is_next_epoch_start(self):
        traffic = DiurnalTraffic(period=24.0, step=1.0)
        assert traffic.next_boundary(3.0) == 4.0
        assert traffic.next_boundary(3.5) == 4.0
        assert traffic.next_boundary(0.0) == 1.0

    def test_sinusoid_peaks_at_quarter_period(self):
        traffic = DiurnalTraffic(period=100.0, base=0.4, amplitude=0.3)
        assert traffic.utilisation(25.0) == pytest.approx(0.7)
        assert traffic.utilisation(75.0) == pytest.approx(0.1)

    def test_clipped_to_legal_band(self):
        traffic = DiurnalTraffic(period=100.0, base=0.8, amplitude=0.5)
        assert traffic.utilisation(25.0) == MAX_UTILISATION
        assert DiurnalTraffic(
            period=100.0, base=0.2, amplitude=0.5
        ).utilisation(75.0) == 0.0

    def test_stateless_make_state_returns_self(self):
        traffic = DiurnalTraffic(period=24.0)
        assert traffic.make_state(123) is traffic

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            DiurnalTraffic(period=0.0)
        with pytest.raises(ConfigurationError):
            DiurnalTraffic(period=24.0, base=0.99)
        with pytest.raises(ConfigurationError):
            DiurnalTraffic(period=24.0, amplitude=-0.1)


class TestMmpp:
    def test_same_seed_replays_same_switch_times(self):
        traffic = MmppTraffic(quiet=0.1, burst=0.7)
        a = traffic.make_state(42)
        b = traffic.make_state(42)
        times = [0.0]
        for _ in range(20):
            times.append(a.next_boundary(times[-1]))
        assert [b.next_boundary(t) for t in times[:-1]] == times[1:]
        assert [a.utilisation_at(t) for t in times] == [
            b.utilisation_at(t) for t in times
        ]

    def test_different_seeds_diverge(self):
        traffic = MmppTraffic()
        a, b = traffic.make_state(1), traffic.make_state(2)
        assert a.next_boundary(0.0) != b.next_boundary(0.0)

    def test_starts_quiet_and_alternates(self):
        state = MmppTraffic(quiet=0.1, burst=0.7).make_state(5)
        assert state.utilisation_at(0.0) == 0.1
        first_switch = state.next_boundary(0.0)
        assert state.utilisation_at(first_switch) == 0.7
        second_switch = state.next_boundary(first_switch)
        assert state.utilisation_at(second_switch) == 0.1

    def test_non_monotone_queries_are_consistent(self):
        # Gateways probe signals out of event order; a revisited time
        # must see the identical utilisation.
        state = MmppTraffic().make_state(9)
        late = state.utilisation_at(500.0)
        early = state.utilisation_at(3.0)
        assert state.utilisation_at(500.0) == late
        assert state.utilisation_at(3.0) == early

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            MmppTraffic(quiet=-0.1)
        with pytest.raises(ConfigurationError):
            MmppTraffic(burst=0.96)
        with pytest.raises(ConfigurationError):
            MmppTraffic(mean_quiet=0.0)


class TestSpecRoundTrip:
    def test_diurnal_round_trip(self):
        traffic = DiurnalTraffic(
            period=120.0, base=0.4, amplitude=0.35, phase=10.0, step=2.0
        )
        assert cross_traffic_from_spec(traffic.to_spec()) == traffic

    def test_diurnal_compact_spec_omits_defaults(self):
        spec = DiurnalTraffic(period=120.0).to_spec()
        assert "phase" not in spec and "step" not in spec

    def test_mmpp_round_trip(self):
        traffic = MmppTraffic(
            quiet=0.1, burst=0.75, mean_quiet=40.0, mean_burst=12.0
        )
        assert cross_traffic_from_spec(traffic.to_spec()) == traffic

    def test_instance_passthrough(self):
        traffic = DiurnalTraffic(period=24.0)
        assert cross_traffic_from_spec(traffic) is traffic

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown cross-traffic"):
            cross_traffic_from_spec({"kind": "fractal"})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError, match="mapping"):
            cross_traffic_from_spec("diurnal")

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="bad cross-traffic"):
            cross_traffic_from_spec({"kind": "mmpp", "loud": 0.9})


class TestLinkIntegration:
    def test_link_spec_round_trip_with_cross_traffic(self):
        link = Link(
            latency=0.05,
            bandwidth=8.0,
            contention="fifo",
            energy_per_mb=0.35,
            cross_traffic=DiurnalTraffic(period=120.0, base=0.4),
        )
        again = Link.from_spec(link.to_spec())
        assert again.cross_traffic == link.cross_traffic
        assert again == link

    def test_legacy_link_spec_unchanged_without_cross_traffic(self):
        link = Link(latency=0.05, bandwidth=8.0, contention="ps")
        assert "cross_traffic" not in link.to_spec()

    def test_cross_traffic_requires_queueing_discipline(self):
        with pytest.raises(ConfigurationError, match="queueing discipline"):
            Link(
                latency=0.05,
                bandwidth=8.0,
                contention="none",
                cross_traffic=DiurnalTraffic(period=24.0),
            )
