"""CLI: subcommand behaviour end-to-end (in-process)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.machines.eet import EETMatrix


@pytest.fixture
def csv_files(tmp_path):
    eet = EETMatrix(
        np.array([[4.0, 10.0], [9.0, 3.0]]), ["T1", "T2"], ["M1", "M2"]
    )
    eet_path = tmp_path / "eet.csv"
    eet.to_csv(eet_path)
    workload_path = tmp_path / "workload.csv"
    workload_path.write_text(
        "task_id,task_type,arrival_time,deadline\n"
        "0,T1,0.0,50.0\n"
        "1,T2,1.0,51.0\n",
        encoding="utf-8",
    )
    return eet_path, workload_path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "e2c-sim" in capsys.readouterr().out


class TestRun:
    def test_run_with_csvs(self, csv_files, capsys):
        eet_path, workload_path = csv_files
        code = main(
            ["run", "--eet", str(eet_path), "--workload", str(workload_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Summary Report" in out
        assert "completion_rate" in out

    def test_run_task_report(self, csv_files, capsys):
        eet_path, workload_path = csv_files
        code = main(
            [
                "run",
                "--eet", str(eet_path),
                "--workload", str(workload_path),
                "--report", "task",
            ]
        )
        assert code == 0
        assert "Task Report" in capsys.readouterr().out

    def test_run_save_reports(self, csv_files, tmp_path, capsys):
        eet_path, workload_path = csv_files
        outdir = tmp_path / "reports"
        code = main(
            [
                "run",
                "--eet", str(eet_path),
                "--workload", str(workload_path),
                "--save-reports", str(outdir),
            ]
        )
        assert code == 0
        assert len(list(outdir.glob("*.csv"))) == 4

    def test_run_batch_policy_with_queue_size(self, csv_files, capsys):
        eet_path, workload_path = csv_files
        code = main(
            [
                "run",
                "--eet", str(eet_path),
                "--workload", str(workload_path),
                "--scheduler", "MM",
                "--queue-size", "2",
            ]
        )
        assert code == 0

    def test_run_animate(self, csv_files, capsys):
        eet_path, workload_path = csv_files
        code = main(
            [
                "run",
                "--eet", str(eet_path),
                "--workload", str(workload_path),
                "--animate",
                "--frame-every", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "current time" in out

    def test_run_scenario_json(self, scenario_factory, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        scenario_factory("MM", queue_capacity=2).to_json(path)
        code = main(["run", "--scenario", str(path)])
        assert code == 0
        assert "Summary Report" in capsys.readouterr().out

    def test_run_missing_inputs_errors(self, capsys):
        code = main(["run"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_scheduler_reports_error(self, csv_files, capsys):
        eet_path, workload_path = csv_files
        code = main(
            [
                "run",
                "--eet", str(eet_path),
                "--workload", str(workload_path),
                "--scheduler", "WISHFUL",
            ]
        )
        assert code == 1
        assert "unknown scheduler" in capsys.readouterr().err


class TestRunPresets:
    def test_run_registered_preset_by_name(self, capsys):
        code = main(
            ["run", "--scenario", "classroom_homogeneous", "--seed", "1"]
        )
        assert code == 0
        assert "Summary Report" in capsys.readouterr().out

    def test_run_federated_preset_prints_per_cluster_and_global(self, capsys):
        code = main(["run", "--scenario", "edge_cloud", "--policy", "mect"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Federation Summary" in out
        assert "edge" in out and "cloud" in out
        assert "GLOBAL" in out
        assert "offloaded:" in out

    def test_run_federated_with_gateway_override(self, capsys):
        code = main(
            [
                "run",
                "--scenario", "edge_cloud",
                "--gateway", "locality-first",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "LOCALITY_FIRST" in out

    def test_run_federated_task_report(self, capsys):
        code = main(
            ["run", "--scenario", "edge_cloud", "--report", "task"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Federation Summary" in out
        assert "Task Report" in out

    def test_unknown_preset_reports_error(self, capsys):
        code = main(["run", "--scenario", "not_a_preset"])
        assert code == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_animate_rejected_for_federated(self, capsys):
        code = main(["run", "--scenario", "edge_cloud", "--animate"])
        assert code == 2
        assert "animate" in capsys.readouterr().err

    def test_run_with_migration_flag(self, capsys):
        code = main(
            [
                "run",
                "--scenario", "fed_rebalance",
                "--migration", "deadline-slack",
                "--migration-interval", "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "migrated > dst" in out

    def test_run_with_migration_off(self, capsys):
        code = main(
            ["run", "--scenario", "fed_rebalance", "--migration", "off"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "migrated > dst" not in out

    def test_migration_interval_requires_migration(self, capsys):
        code = main(
            ["run", "--scenario", "fed_rebalance", "--migration-interval", "5"]
        )
        assert code == 2
        assert "--migration" in capsys.readouterr().err

    def test_migration_interval_conflicts_with_off(self, capsys):
        code = main(
            [
                "run",
                "--scenario", "fed_rebalance",
                "--migration", "off",
                "--migration-interval", "5",
            ]
        )
        assert code == 2
        assert "conflicts" in capsys.readouterr().err

    def test_migration_rejected_for_single_cluster(self, capsys):
        code = main(
            [
                "run",
                "--scenario", "satellite_imaging",
                "--migration", "LONGEST_WAIT",
            ]
        )
        assert code == 1
        assert "federated" in capsys.readouterr().err


class TestGenerate:
    def test_generate_workload(self, csv_files, tmp_path, capsys):
        eet_path, _ = csv_files
        out = tmp_path / "generated.csv"
        code = main(
            [
                "generate",
                "--eet", str(eet_path),
                "--out", str(out),
                "--duration", "200",
                "--seed", "3",
            ]
        )
        assert code == 0
        text = out.read_text(encoding="utf-8")
        assert text.startswith("task_id,task_type,arrival_time,deadline")
        assert len(text.splitlines()) > 2

    def test_generate_numeric_intensity(self, csv_files, tmp_path):
        eet_path, _ = csv_files
        out = tmp_path / "generated.csv"
        code = main(
            [
                "generate",
                "--eet", str(eet_path),
                "--out", str(out),
                "--intensity", "1.5",
                "--seed", "3",
            ]
        )
        assert code == 0


class TestOtherCommands:
    def test_schedulers_listing(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        assert "MECT" in out and "MM" in out
        assert "gateway policies" in out
        assert "LEAST_LOADED" in out
        assert "ADAPTIVE" in out
        assert "eviction policies" in out
        assert "LONGEST_WAIT" in out

    def test_schedulers_listing_shows_constructor_params(self, capsys):
        # The listing doubles as the reference for what gateway_params /
        # scheduler_params / policy_params accept: every parameterised
        # policy row carries its constructor kwargs with defaults.
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        assert "(k=50.0)" in out  # KPB scheduler
        assert "(threshold=2.0)" in out  # LOCALITY_FIRST gateway
        assert "epsilon=0.1" in out and "seed=0" in out  # ADAPTIVE
        assert "strategy='epsilon'" in out
        assert "(margin=1.5)" in out  # DEADLINE_SLACK eviction

    def test_scenarios_listing_includes_federated_presets(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("edge_cloud", "geo_3site", "fed_heavytail"):
            assert name in out

    def test_scenarios_listing_is_registry_generated(self, capsys):
        # The listing is rendered from scenario_summaries(), the same
        # single source of truth the README preset table doctests — every
        # registered preset must appear, with its factory's first doc line.
        from repro.scenarios import scenario_summaries

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name, summary in scenario_summaries():
            assert name in out
            if summary:
                assert summary in out

    def test_schedulers_mode_filter(self, capsys):
        assert main(["schedulers", "--mode", "batch"]) == 0
        out = capsys.readouterr().out
        assert "MM" in out
        assert "FCFS" not in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "CloudSim" in capsys.readouterr().out

    def test_quiz(self, capsys):
        assert main(["quiz", "--seed", "1"]) == 0
        assert "Scheduling quiz" in capsys.readouterr().out

    def test_quiz_with_key(self, capsys):
        assert main(["quiz", "--seed", "1", "--key"]) == 0
        out = capsys.readouterr().out
        assert "Answer key" in out
        assert "MECT" in out

    def test_assignment_single_figure(self, capsys):
        code = main(
            [
                "assignment",
                "--figure", "5",
                "--replications", "1",
                "--duration", "100",
            ]
        )
        assert code == 0
        assert "Fig 5" in capsys.readouterr().out


class TestScenariosCommand:
    def test_lists_registered_presets(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("satellite_imaging", "edge_ai", "classroom_homogeneous"):
            assert name in out


class TestSweep:
    def test_inline_grid(self, capsys):
        code = main(
            [
                "sweep",
                "--scenarios", "classroom_homogeneous",
                "--schedulers", "FCFS,MECT",
                "--seeds", "1",
                "--serial",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 scenario(s) x 2 scheduler(s) x 1 seed(s)" in out
        assert "FCFS" in out and "MECT" in out

    def test_requires_spec_or_inline_grid(self, capsys):
        assert main(["sweep"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_spec_and_inline_are_exclusive(self, tmp_path, capsys):
        spec_path = tmp_path / "c.json"
        spec_path.write_text("{}", encoding="utf-8")
        code = main(
            [
                "sweep",
                "--spec", str(spec_path),
                "--scenarios", "edge_ai",
                "--schedulers", "FCFS",
            ]
        )
        assert code == 2
        # --seeds/--seed alongside --spec must not be silently ignored
        assert main(["sweep", "--spec", str(spec_path), "--seeds", "1"]) == 2
        assert main(["sweep", "--spec", str(spec_path), "--seed", "7"]) == 2

    def test_bad_seeds_are_a_clean_error(self, capsys):
        code = main(
            [
                "sweep",
                "--scenarios", "classroom_homogeneous",
                "--schedulers", "FCFS",
                "--seeds", "abc",
            ]
        )
        assert code == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_json_spec_round_trip(self, tmp_path, capsys):
        """--save-spec output reloads via --spec and reproduces the table."""
        from repro.experiments import CampaignSpec

        CampaignSpec(
            scenarios=[
                {"name": "classroom_homogeneous",
                 "overrides": {"duration": 60.0}},
            ],
            schedulers=["FCFS", "MECT"],
            seeds=[1, 2],
            seed=5,
        ).to_json(tmp_path / "campaign.json")

        first = tmp_path / "first.csv"
        second = tmp_path / "second.csv"
        assert main(
            [
                "sweep",
                "--spec", str(tmp_path / "campaign.json"),
                "--serial",
                "--save-table", str(first),
                "--save-spec", str(tmp_path / "resaved.json"),
            ]
        ) == 0
        assert main(
            [
                "sweep",
                "--spec", str(tmp_path / "resaved.json"),
                "--serial",
                "--save-table", str(second),
            ]
        ) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()


class TestTournament:
    ARGS = [
        "tournament",
        "--presets", "fed_rebalance",
        "--gateways", "LEAST_LOADED,LOCALITY_FIRST",
        "--evictions", "LONGEST_WAIT",
        "--repetitions", "1",
        "--seed", "7",
    ]

    def test_prints_ranked_leaderboard(self, capsys):
        assert main([*self.ARGS, "--serial"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("rank")
        assert "LEAST_LOADED" in out and "LOCALITY_FIRST" in out
        assert "completion_rate" in out

    def test_out_json_is_worker_count_invariant(self, tmp_path, capsys):
        import json

        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        table = tmp_path / "table.csv"
        assert main(
            [*self.ARGS, "--serial", "--out", str(serial)]
        ) == 0
        assert main(
            [
                *self.ARGS,
                "--workers", "2",
                "--out", str(parallel),
                "--save-table", str(table),
            ]
        ) == 0
        capsys.readouterr()
        assert serial.read_bytes() == parallel.read_bytes()
        board = json.loads(serial.read_text())
        assert board["kind"] == "tournament-leaderboard"
        assert [e["rank"] for e in board["entries"]] == [1, 2]
        assert table.read_text().startswith("scenario,scheduler,seed")

    def test_unknown_gateway_is_a_clean_error(self, capsys):
        code = main(
            [
                "tournament",
                "--presets", "fed_rebalance",
                "--gateways", "NO_SUCH_GATEWAY",
                "--serial",
            ]
        )
        assert code == 1
        assert "NO_SUCH_GATEWAY" in capsys.readouterr().err


class TestBench:
    def test_default_help_lists_bench(self, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "--help"])
        assert "throughput" in capsys.readouterr().out

    def test_bench_classroom(self, capsys, tmp_path):
        json_path = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--scenarios", "classroom_homogeneous",
                "--repeat", "1",
                "--json", str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "classroom_homogeneous" in out
        assert "ev/s" in out
        import json

        rows = json.loads(json_path.read_text(encoding="utf-8"))
        assert rows[0]["scenario"] == "classroom_homogeneous"
        assert rows[0]["events"] > 0
        assert rows[0]["best_events_per_sec"] > 0

    def test_bench_scheduler_override(self, capsys):
        code = main(
            [
                "bench",
                "--scenarios", "classroom_homogeneous",
                "--scheduler", "MECT",
                "--repeat", "1",
            ]
        )
        assert code == 0
        assert "MECT" in capsys.readouterr().out

    def test_bench_rejects_bad_repeat(self, capsys):
        assert main(["bench", "--repeat", "0"]) == 2
        assert "--repeat" in capsys.readouterr().err

    def test_bench_unknown_scenario_is_clean_error(self, capsys):
        assert main(["bench", "--scenarios", "nope"]) == 1
        assert "unknown scenario" in capsys.readouterr().err


class TestService:
    """The spool transport: submit -> serve -> status/result, in-process."""

    SPEC = '{"preset": "classroom_homogeneous", "overrides": {"duration": 40.0}}'

    def _serve_once(self, root):
        return main(
            [
                "serve",
                "--dir", str(root),
                "--workers", "1",
                "--max-jobs", "1",
                "--idle-exit", "2",
                "--poll", "0.05",
            ]
        )

    def test_spool_round_trip(self, tmp_path, capsys):
        import json

        root = tmp_path / "svc"
        assert main(["submit", "--dir", str(root), self.SPEC]) == 0
        assert "submitted" in capsys.readouterr().out

        assert self._serve_once(root) == 0
        out = capsys.readouterr().out
        assert "job-000001" in out
        assert "--max-jobs" in out

        receipts = list((root / "receipts").glob("sub-*.json"))
        assert len(receipts) == 1
        receipt = json.loads(receipts[0].read_text(encoding="utf-8"))
        assert receipt["kind"] == "scenario"
        assert receipt["cached"] is False
        job_id = receipt["job_id"]

        assert main(["submit", "--dir", str(root), "--status", job_id]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["state"] == "done"
        assert status["key"] == receipt["key"]
        assert "result" not in status and "request" not in status

        assert main(["submit", "--dir", str(root), "--result", job_id]) == 0
        out = capsys.readouterr().out
        assert "summary" in out
        assert "completion_rate" in out

    def test_second_serve_session_hits_the_cache(self, tmp_path, capsys):
        import json

        root = tmp_path / "svc"
        assert main(["submit", "--dir", str(root), self.SPEC]) == 0
        assert self._serve_once(root) == 0
        capsys.readouterr()

        # Same spec, fresh server process: served from the on-disk cache.
        assert main(["submit", "--dir", str(root), self.SPEC]) == 0
        assert self._serve_once(root) == 0
        assert "cache hit" in capsys.readouterr().out
        receipts = sorted((root / "receipts").glob("sub-*.json"))
        cached = [
            json.loads(p.read_text(encoding="utf-8"))["cached"]
            for p in receipts
        ]
        assert sorted(cached) == [False, True]

    def test_rejected_submission_writes_error_receipt(self, tmp_path, capsys):
        import json

        root = tmp_path / "svc"
        assert main(["submit", "--dir", str(root), '{"frobnicate": 1}']) == 0
        code = main(
            [
                "serve",
                "--dir", str(root),
                "--workers", "1",
                "--idle-exit", "0.5",
                "--poll", "0.05",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "rejected" in err
        receipts = list((root / "receipts").glob("sub-*.json"))
        assert len(receipts) == 1
        body = json.loads(receipts[0].read_text(encoding="utf-8"))
        assert "cannot classify" in body["error"]

    def test_submit_requires_spec_or_query(self, tmp_path, capsys):
        assert main(["submit", "--dir", str(tmp_path / "svc")]) == 2
        assert "provide a spec" in capsys.readouterr().err

    def test_submit_rejects_spec_plus_query(self, tmp_path, capsys):
        code = main(
            ["submit", "--dir", str(tmp_path / "svc"), "--status",
             "job-000001", self.SPEC]
        )
        assert code == 2
        assert "do not take a spec" in capsys.readouterr().err

    def test_status_of_unknown_job(self, tmp_path, capsys):
        code = main(
            ["submit", "--dir", str(tmp_path / "svc"), "--status", "job-9"]
        )
        assert code == 1
        assert "no such job" in capsys.readouterr().err

    def test_wait_without_server_times_out(self, tmp_path, capsys):
        code = main(
            ["submit", "--dir", str(tmp_path / "svc"), self.SPEC,
             "--wait", "0.3"]
        )
        assert code == 1
        assert "no receipt" in capsys.readouterr().err

    def test_bare_word_spec_is_a_preset_reference(self, tmp_path, capsys):
        import json

        root = tmp_path / "svc"
        assert main(["submit", "--dir", str(root), "classroom_homogeneous"]) == 0
        capsys.readouterr()
        submitted = list((root / "inbox").glob("sub-*.json"))
        assert len(submitted) == 1
        body = json.loads(submitted[0].read_text(encoding="utf-8"))
        assert body == {"preset": "classroom_homogeneous"}


class TestTrace:
    SAMPLE = "data:google_cluster_sample.csv"
    MAPPING = "arrival_time=submit_time_us,task_id=job_id"

    def test_inspect_bundled_sample(self, capsys):
        code = main(
            [
                "trace", "inspect", self.SAMPLE,
                "--columns", self.MAPPING,
                "--time-unit", "1e-6",
                "--bin-column", "cpu_request",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rows     420" in out
        assert "cpu_request" in out
        assert "quartiles" in out

    def test_convert_writes_canonical_workload(self, csv_files, tmp_path, capsys):
        eet_path, _ = csv_files
        out_path = tmp_path / "converted.csv"
        code = main(
            [
                "trace", "convert", self.SAMPLE,
                "--columns", self.MAPPING,
                "--time-unit", "1e-6",
                "--bin-column", "cpu_request",
                "--deadline", "60",
                "--sample", "0.5",
                "--seed", "7",
                "--eet", str(eet_path),
                "--out", str(out_path),
            ]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        header = out_path.read_text(encoding="utf-8").splitlines()[0]
        assert header.startswith("task_id,task_type,arrival_time,deadline")
        assert "source_id" in header

    def test_convert_is_deterministic(self, csv_files, tmp_path, capsys):
        eet_path, _ = csv_files
        texts = []
        for name in ("a.csv", "b.csv"):
            path = tmp_path / name
            assert main(
                [
                    "trace", "convert", self.SAMPLE,
                    "--columns", self.MAPPING,
                    "--time-unit", "1e-6",
                    "--bin-column", "cpu_request",
                    "--deadline", "60",
                    "--sample", "0.5",
                    "--seed", "7",
                    "--eet", str(eet_path),
                    "--out", str(path),
                ]
            ) == 0
            texts.append(path.read_text(encoding="utf-8"))
        assert texts[0] == texts[1]

    def test_replay_preset_summary(self, capsys):
        code = main(["trace", "replay", "--scenario", "trace_replay"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Summary Report" in out
        assert "total_tasks               420" in out

    def test_replay_rejects_non_trace_scenario(self, capsys):
        code = main(["trace", "replay", "--scenario", "classroom_homogeneous"])
        assert code == 2
        assert "not trace-driven" in capsys.readouterr().err

    def test_bad_columns_flag_is_clean_error(self, capsys):
        code = main(
            ["trace", "inspect", self.SAMPLE, "--columns", "nonsense"]
        )
        assert code == 1
        assert "ROLE=COL" in capsys.readouterr().err

    def test_bad_window_flag_is_clean_error(self, capsys):
        code = main(
            ["trace", "inspect", self.SAMPLE, "--window", "oops"]
        )
        assert code == 1
        assert "START:END" in capsys.readouterr().err
