"""Failure injection: model, machine mechanics, end-to-end robustness."""

import math

import numpy as np
import pytest

from repro.core.config import Scenario
from repro.core.errors import ConfigurationError, SimulationStateError
from repro.machines.cluster import Cluster
from repro.machines.eet import EETMatrix
from repro.machines.failures import FailureModel
from repro.tasks.task import Task, TaskStatus
from repro.tasks.task_type import TaskType
from repro.tasks.workload import Workload


class TestFailureModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FailureModel(mtbf=0.0, mttr=1.0)
        with pytest.raises(ConfigurationError):
            FailureModel(mtbf=1.0, mttr=-1.0)
        with pytest.raises(ConfigurationError):
            FailureModel(mtbf=1.0, mttr=1.0, per_machine_type={"A": (0.0, 1.0)})

    def test_expected_availability(self, cluster_3x2):
        model = FailureModel(mtbf=90.0, mttr=10.0)
        assert model.expected_availability(cluster_3x2[0]) == pytest.approx(0.9)

    def test_per_type_overrides(self, cluster_3x2):
        model = FailureModel(
            mtbf=100.0, mttr=10.0, per_machine_type={"M2": (50.0, 5.0)}
        )
        assert model.parameters_for(cluster_3x2[0]) == (100.0, 10.0)
        assert model.parameters_for(cluster_3x2[1]) == (50.0, 5.0)

    def test_samples_positive(self, cluster_3x2):
        model = FailureModel(mtbf=10.0, mttr=2.0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert model.sample_uptime(cluster_3x2[0], rng) > 0
            assert model.sample_downtime(cluster_3x2[0], rng) > 0


class TestMachineFailMechanics:
    def _machine_with_work(self, task_types, eet_3x2):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        machine = cluster[0]
        running = Task(
            id=0, task_type=task_types[0], arrival_time=0.0, deadline=99.0
        )
        running.enqueue_batch()
        machine.enqueue(running, 0.0)
        machine.start_next(0.0)
        queued = Task(
            id=1, task_type=task_types[1], arrival_time=0.0, deadline=99.0
        )
        queued.enqueue_batch()
        machine.enqueue(queued, 0.0)
        return machine, running, queued

    def test_fail_evicts_running_and_queued(self, task_types, eet_3x2):
        machine, running, queued = self._machine_with_work(task_types, eet_3x2)
        evicted = machine.fail(2.0)
        assert evicted == [running, queued]
        assert machine.is_idle
        assert len(machine.queue) == 0
        assert not machine.up
        assert machine.failure_count == 1

    def test_down_machine_rejects_everything(self, task_types, eet_3x2):
        machine, *_ = self._machine_with_work(task_types, eet_3x2)
        machine.fail(2.0)
        assert not machine.can_accept()
        assert machine.ready_time(5.0) == math.inf
        assert machine.start_next(5.0) is None

    def test_repair_restores(self, task_types, eet_3x2):
        machine, *_ = self._machine_with_work(task_types, eet_3x2)
        machine.fail(2.0)
        machine.repair(7.0)
        assert machine.up
        assert machine.can_accept()
        assert machine.ready_time(7.0) == 7.0

    def test_downtime_metered_as_off(self, task_types, eet_3x2):
        machine, *_ = self._machine_with_work(task_types, eet_3x2)
        machine.fail(2.0)
        machine.repair(7.0)
        assert machine.energy.off_time == pytest.approx(5.0)
        assert machine.energy.busy_time == pytest.approx(2.0)
        assert machine.energy.availability() == pytest.approx(2.0 / 7.0)

    def test_double_fail_rejected(self, task_types, eet_3x2):
        machine, *_ = self._machine_with_work(task_types, eet_3x2)
        machine.fail(2.0)
        with pytest.raises(SimulationStateError):
            machine.fail(3.0)

    def test_repair_up_machine_rejected(self, cluster_3x2):
        with pytest.raises(SimulationStateError):
            cluster_3x2[0].repair(1.0)

    def test_requeue_resets_placement(self, task_types, eet_3x2):
        machine, running, _ = self._machine_with_work(task_types, eet_3x2)
        machine.fail(2.0)
        running.requeue(2.0)
        assert running.status is TaskStatus.IN_BATCH_QUEUE
        assert running.machine is None
        assert running.start_time is None
        assert running.retries == 1


class TestEndToEnd:
    def _scenario(self, mtbf, mttr, *, deadline_slack=1e9, scheduler="MECT"):
        task_type = TaskType("T", 0)
        eet = EETMatrix(np.array([[5.0, 5.0]]), [task_type], ["A", "B"])
        tasks = [
            Task(
                id=i,
                task_type=task_type,
                arrival_time=float(3 * i),
                deadline=float(3 * i) + deadline_slack,
            )
            for i in range(30)
        ]
        workload = Workload(task_types=[task_type], tasks=tasks)
        return Scenario(
            eet=eet,
            machine_counts={"A": 1, "B": 1},
            scheduler=scheduler,
            workload=workload,
            failure_model=FailureModel(mtbf=mtbf, mttr=mttr),
            seed=7,
        )

    def test_conservation_under_failures(self):
        result = self._scenario(mtbf=20.0, mttr=5.0, deadline_slack=40.0).run()
        s = result.summary
        assert s.completed + s.cancelled + s.missed == s.total_tasks == 30

    def test_all_complete_with_generous_deadlines(self):
        """With effectively-infinite deadlines every task survives crashes."""
        result = self._scenario(mtbf=15.0, mttr=3.0).run()
        assert result.summary.completed == 30

    def test_retries_recorded(self):
        scenario = self._scenario(mtbf=10.0, mttr=3.0)
        sim = scenario.build_simulator()
        sim.run()
        assert any(t.retries > 0 for t in sim.workload)

    def test_failures_hurt_tight_deadlines(self):
        healthy = self._scenario(mtbf=1e9, mttr=1.0, deadline_slack=12.0).run()
        failing = self._scenario(mtbf=12.0, mttr=6.0, deadline_slack=12.0).run()
        assert failing.summary.completion_rate < healthy.summary.completion_rate

    def test_simulation_terminates(self):
        """The failure process must not keep the event stream alive forever."""
        result = self._scenario(mtbf=5.0, mttr=1.0).run()
        assert result.events_processed < 50_000

    def test_deterministic_under_failures(self):
        scenario = self._scenario(mtbf=15.0, mttr=4.0, deadline_slack=30.0)
        assert (
            scenario.run().summary.as_dict()
            == scenario.run().summary.as_dict()
        )

    def test_batch_mode_routes_around_down_machine(self):
        scenario = self._scenario(
            mtbf=25.0, mttr=10.0, deadline_slack=60.0, scheduler="MM"
        )
        from dataclasses import replace

        scenario = replace(scenario, queue_capacity=2)
        result = scenario.run()
        s = result.summary
        assert s.completed + s.cancelled + s.missed == 30

    def test_json_round_trip_with_failure_model(self):
        scenario = self._scenario(mtbf=20.0, mttr=5.0, deadline_slack=40.0)
        from repro.core.config import Scenario as S

        clone = S.from_json(scenario.to_json())
        assert clone.failure_model is not None
        assert clone.failure_model.mtbf == 20.0
        assert (
            clone.run().summary.as_dict() == scenario.run().summary.as_dict()
        )
