"""Communication extension: links, transfer delays, in-simulation effects."""

import numpy as np
import pytest

from repro.core.config import Scenario
from repro.core.errors import ConfigurationError
from repro.machines.eet import EETMatrix
from repro.machines.machine_type import MachineType
from repro.net.topology import Link, StarTopology
from repro.net.transfer import output_return_delay, transfer_delay
from repro.tasks.task_type import TaskType


class TestLink:
    def test_latency_only(self):
        link = Link(latency=0.5)
        assert link.delay_for(100.0) == 0.5

    def test_latency_plus_bandwidth(self):
        link = Link(latency=0.1, bandwidth=10.0)
        assert link.delay_for(5.0) == pytest.approx(0.6)

    def test_zero_payload(self):
        link = Link(latency=0.1, bandwidth=10.0)
        assert link.delay_for(0.0) == 0.1

    def test_negative_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            Link(latency=-0.1)
        with pytest.raises(ConfigurationError):
            Link(bandwidth=-1.0)

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            Link().delay_for(-1.0)


class TestTopology:
    def test_default_link(self):
        topo = StarTopology()
        assert topo.link_for("anything") == Link()

    def test_set_and_get(self):
        topo = StarTopology().set_link("GPU", 0.2, 100.0)
        assert topo.link_for("GPU") == Link(0.2, 100.0)

    def test_uniform(self):
        topo = StarTopology.uniform(["A", "B"], latency=0.3)
        assert topo.link_for("A").latency == 0.3
        assert topo.link_for("B").latency == 0.3

    def test_as_scenario_network(self):
        topo = StarTopology().set_link("A", 0.1, 50.0)
        assert topo.as_scenario_network() == {"A": (0.1, 50.0)}

    def test_as_scenario_network_exports_default_for_named_types(self):
        """Regression: the default link used to be silently dropped.

        A machine type without an explicit link fell back to ``default``
        in-process, but ``as_scenario_network()`` omitted it — after a
        round-trip through Scenario the type got a zero link instead.
        """
        topo = StarTopology(default=Link(0.25, 10.0)).set_link("GPU", 0.1, 50.0)
        network = topo.as_scenario_network(["CPU", "GPU", "FPGA"])
        assert network == {
            "CPU": (0.25, 10.0),
            "GPU": (0.1, 50.0),
            "FPGA": (0.25, 10.0),
        }

    def test_as_scenario_network_nontrivial_default_requires_names(self):
        from repro.core.errors import ConfigurationError

        topo = StarTopology(default=Link(0.25, 10.0)).set_link("GPU", 0.1)
        with pytest.raises(ConfigurationError):
            topo.as_scenario_network()

    def test_default_link_survives_scenario_round_trip(self):
        import numpy as np

        from repro.core.config import Scenario
        from repro.machines.eet import EETMatrix

        eet = EETMatrix(
            np.array([[4.0, 2.0]]), ["T"], ["CPU", "GPU"]
        )
        topo = StarTopology(default=Link(0.25, 10.0)).set_link("GPU", 0.1, 50.0)
        scenario = Scenario(
            eet=eet,
            machine_counts={"CPU": 1, "GPU": 1},
            scheduler="MECT",
            generator={"duration": 10.0},
            network=topo.as_scenario_network(eet.machine_type_names),
            enable_network=True,
        )
        rebuilt = Scenario.from_dict(scenario.to_dict())
        cluster = rebuilt.build_cluster()
        cpu = next(m for m in cluster if m.machine_type.name == "CPU")
        assert cpu.machine_type.network_latency == 0.25
        assert cpu.machine_type.network_bandwidth == 10.0


class TestTransferDelay:
    def test_delay_components(self):
        task_type = TaskType("T", 0, data_in=10.0, data_out=2.0)
        mtype = MachineType("M", 0, network_latency=0.5, network_bandwidth=5.0)
        assert transfer_delay(task_type, mtype) == pytest.approx(2.5)
        assert output_return_delay(task_type, mtype) == pytest.approx(0.9)

    def test_zero_bandwidth_is_latency_only(self):
        task_type = TaskType("T", 0, data_in=10.0)
        mtype = MachineType("M", 0, network_latency=0.5)
        assert transfer_delay(task_type, mtype) == 0.5

    def test_no_network_zero_delay(self):
        task_type = TaskType("T", 0)
        mtype = MachineType("M", 0)
        assert transfer_delay(task_type, mtype) == 0.0


class TestInSimulation:
    def _scenario(self, enable_network, latency=2.0):
        task_type = TaskType("T", 0, data_in=10.0)
        eet = EETMatrix(np.array([[5.0]]), [task_type], ["M"])
        from repro.tasks.task import Task
        from repro.tasks.workload import Workload

        workload = Workload(
            task_types=[task_type],
            tasks=[Task(id=0, task_type=task_type, arrival_time=0.0, deadline=50.0)],
        )
        return Scenario(
            eet=eet,
            machine_counts={"M": 1},
            scheduler="MECT",
            workload=workload,
            network={"M": (latency, 10.0)},
            enable_network=enable_network,
        )

    def test_network_delays_start(self):
        # delay = 2.0 latency + 10 MB / 10 MBps = 3.0 s; start at 3, end at 8
        result = self._scenario(enable_network=True).run()
        (record,) = result.task_records
        assert record["start_time"] == pytest.approx(3.0)
        assert record["completion_time"] == pytest.approx(8.0)

    def test_network_disabled_ignores_links(self):
        result = self._scenario(enable_network=False).run()
        (record,) = result.task_records
        assert record["start_time"] == 0.0
        assert record["completion_time"] == pytest.approx(5.0)

    def test_miss_in_transit_recorded(self):
        task_type = TaskType("T", 0, data_in=100.0)
        eet = EETMatrix(np.array([[1.0]]), [task_type], ["M"])
        from repro.tasks.task import Task
        from repro.tasks.workload import Workload

        workload = Workload(
            task_types=[task_type],
            tasks=[Task(id=0, task_type=task_type, arrival_time=0.0, deadline=3.0)],
        )
        # transfer = 10 s latency: the deadline (3) fires mid-transit.
        scenario = Scenario(
            eet=eet,
            machine_counts={"M": 1},
            scheduler="MECT",
            workload=workload,
            network={"M": (10.0, 0.0)},
            enable_network=True,
        )
        result = scenario.run()
        (record,) = result.task_records
        assert record["status"] == "missed"
        assert record["drop_stage"] == "in_transit"
