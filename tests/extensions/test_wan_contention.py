"""WAN links as queueing resources: contention disciplines + link energy.

The timing assertions use bandwidth/payload values that are exact in binary
floating point (0.5, 1, 2, 4, ...), so delivery instants are asserted
exactly, not approximately.
"""

import numpy as np
import pytest

from repro.core.config import Scenario
from repro.core.errors import ConfigurationError
from repro.core.event_queue import EventQueue
from repro.core.events import EventType
from repro.federation import ClusterSpec, FederationSpec
from repro.machines.eet import EETMatrix
from repro.net import InterClusterTopology, Link, WanManager
from repro.net.wan import TransferPhase
from repro.tasks.task import Task
from repro.tasks.task_type import TaskType
from repro.tasks.workload import Workload


# -- Link parameter surface ------------------------------------------------------------


class TestLinkParameters:
    def test_contention_requires_bandwidth(self):
        with pytest.raises(ConfigurationError):
            Link(latency=1.0, bandwidth=0.0, contention="fifo")

    def test_unknown_contention_rejected(self):
        with pytest.raises(ConfigurationError):
            Link(latency=1.0, bandwidth=1.0, contention="wfq")

    def test_negative_energy_rejected(self):
        with pytest.raises(ConfigurationError):
            Link(bandwidth=1.0, energy_per_mb=-1.0)
        with pytest.raises(ConfigurationError):
            Link(idle_watts=-0.1)

    def test_plain_link_spec_stays_compact(self):
        # Legacy scenario JSON must round-trip byte-identically.
        link = Link(0.5, 10.0)
        assert link.to_spec() == [0.5, 10.0]
        assert Link.from_spec([0.5, 10.0]) == link

    def test_unknown_spec_key_rejected(self):
        # A misspelled field must fail loudly, not degrade to 0.0.
        with pytest.raises(ConfigurationError, match="idle_watt"):
            Link.from_spec({"latency": 0.05, "idle_watt": 2.0})

    def test_rich_link_spec_round_trips(self):
        link = Link(
            0.5,
            10.0,
            contention="ps",
            energy_per_mb=0.3,
            idle_watts=2.0,
            busy_watts=12.0,
        )
        assert Link.from_spec(link.to_spec()) == link

    def test_service_time_and_transfer_energy(self):
        link = Link(1.0, 4.0, contention="fifo", energy_per_mb=2.0)
        assert link.service_time(8.0) == 2.0
        assert link.transfer_energy(8.0) == 16.0
        assert link.delay_for(8.0) == 3.0


class TestLinkKey:
    def test_symmetric_traffic_shares_one_pipe(self):
        topo = InterClusterTopology()
        topo.set_link("a", "b", 1.0, 2.0)
        assert topo.link_key("a", "b") == topo.link_key("b", "a") == ("a", "b")

    def test_symmetric_default_pairs_canonicalise(self):
        topo = InterClusterTopology(default=Link(1.0, 2.0))
        assert topo.link_key("x", "y") == topo.link_key("y", "x")

    def test_asymmetric_directions_are_distinct_pipes(self):
        topo = InterClusterTopology(symmetric=False, default=Link(1.0, 2.0))
        assert topo.link_key("a", "b") != topo.link_key("b", "a")

    def test_two_directed_entries_are_distinct_pipes(self):
        topo = InterClusterTopology()
        topo.set_link("a", "b", 1.0, 2.0)
        topo.set_link("b", "a", 9.0, 2.0)
        assert topo.link_key("a", "b") == ("a", "b")
        assert topo.link_key("b", "a") == ("b", "a")


# -- WanManager unit level --------------------------------------------------------------


def _task(task_id, mb, arrival=0.0, deadline=1000.0):
    task_type = TaskType("T", 0, data_in=mb)
    return Task(
        id=task_id, task_type=task_type, arrival_time=arrival, deadline=deadline
    )


def _drain(manager, events):
    """Run the WAN event loop to empty; return {task_id: delivery_time}."""
    deliveries = {}
    transfers = {}
    while events:
        event = events.pop()
        if event.type is EventType.LINK_TRANSFER:
            WanManager.on_link_event(event, event.time)
        elif event.type is EventType.TASK_ARRIVAL:
            deliveries[event.payload.id] = event.time
            transfer = transfers.get(event.payload.id)
            if transfer is not None:
                manager.on_delivered(transfer, event.time)
    return deliveries


class TestFifoQueueing:
    def _submit_pair(self, topo, names, srcs):
        events = EventQueue()
        manager = WanManager(topo, events, names)
        transfers = {}
        for i, src in enumerate(srcs):
            task = _task(i, 4.0)
            transfers[i] = manager.submit(task, src, names.index("cloud"), 0.0)
        deliveries = {}
        while events:
            event = events.pop()
            if event.type is EventType.LINK_TRANSFER:
                WanManager.on_link_event(event, event.time)
            else:
                deliveries[event.payload.id] = event.time
                manager.on_delivered(transfers[event.payload.id], event.time)
        return deliveries

    def test_shared_fifo_link_strictly_slower_than_separate_links(self):
        # The acceptance regression: two concurrent transfers on ONE fifo
        # link must finish strictly later than the same transfers on
        # separate links.
        shared = InterClusterTopology()
        shared.set_link("edge", "cloud", 1.0, 1.0, contention="fifo")
        shared_times = self._submit_pair(shared, ["edge", "cloud"], [0, 0])

        separate = InterClusterTopology()
        separate.set_link("edge_a", "cloud", 1.0, 1.0, contention="fifo")
        separate.set_link("edge_b", "cloud", 1.0, 1.0, contention="fifo")
        names = ["edge_a", "edge_b", "cloud"]
        separate_times = self._submit_pair(separate, names, [0, 1])

        # Separate pipes: both serialise concurrently, delivered at 5.0.
        assert separate_times == {0: 5.0, 1: 5.0}
        # One shared pipe: the second transfer waits for the first.
        assert shared_times == {0: 5.0, 1: 9.0}
        assert max(shared_times.values()) > max(separate_times.values())

    def test_fifo_serialises_in_arrival_order(self):
        topo = InterClusterTopology()
        topo.set_link("edge", "cloud", 1.0, 1.0, contention="fifo")
        events = EventQueue()
        manager = WanManager(topo, events, ["edge", "cloud"])
        transfers = {
            0: manager.submit(_task(0, 2.0), 0, 1, 0.0),
            1: manager.submit(_task(1, 2.0), 0, 1, 0.5),
            2: manager.submit(_task(2, 2.0), 0, 1, 0.75),
        }
        deliveries = {}
        while events:
            event = events.pop()
            if event.type is EventType.LINK_TRANSFER:
                WanManager.on_link_event(event, event.time)
            else:
                deliveries[event.payload.id] = event.time
                manager.on_delivered(transfers[event.payload.id], event.time)
        # Serialisations: [0,2], [2,4], [4,6]; latency 1 after each.
        assert deliveries == {0: 3.0, 1: 5.0, 2: 7.0}
        usage = manager.usage(end_time=7.0)["edge<->cloud"]
        assert usage.delivered == 3
        assert usage.busy_time == 6.0
        # Waits: task1 queued 0.5→2.0, task2 queued 0.75→4.0.
        assert usage.wait_time == pytest.approx(1.5 + 3.25)


class TestProcessorSharing:
    def test_ps_shares_bandwidth_equally(self):
        topo = InterClusterTopology()
        topo.set_link("edge", "cloud", 1.0, 1.0, contention="ps")
        events = EventQueue()
        manager = WanManager(topo, events, ["edge", "cloud"])
        transfers = {
            0: manager.submit(_task(0, 4.0), 0, 1, 0.0),
            1: manager.submit(_task(1, 4.0), 0, 1, 0.0),
        }
        deliveries = {}
        while events:
            event = events.pop()
            if event.type is EventType.LINK_TRANSFER:
                WanManager.on_link_event(event, event.time)
            else:
                deliveries[event.payload.id] = event.time
                manager.on_delivered(transfers[event.payload.id], event.time)
        # Both crawl at 0.5 MB/s: serialised at 8, delivered at 9.
        assert deliveries == {0: 9.0, 1: 9.0}

    def test_fifo_vs_ps_delay_ordering(self):
        # Same offered load: FIFO gets the first transfer out strictly
        # earlier; the clearing time of the whole batch is identical
        # (both disciplines are work-conserving).
        def run(contention):
            topo = InterClusterTopology()
            topo.set_link("edge", "cloud", 1.0, 1.0, contention=contention)
            events = EventQueue()
            manager = WanManager(topo, events, ["edge", "cloud"])
            transfers = {
                i: manager.submit(_task(i, 4.0), 0, 1, 0.0) for i in range(2)
            }
            deliveries = {}
            while events:
                event = events.pop()
                if event.type is EventType.LINK_TRANSFER:
                    WanManager.on_link_event(event, event.time)
                else:
                    deliveries[event.payload.id] = event.time
                    manager.on_delivered(
                        transfers[event.payload.id], event.time
                    )
            return deliveries

        fifo, ps = run("fifo"), run("ps")
        assert min(fifo.values()) < min(ps.values())
        assert max(fifo.values()) == max(ps.values())

    def test_late_joiner_slows_the_flow_in_progress(self):
        topo = InterClusterTopology()
        topo.set_link("edge", "cloud", 0.0, 1.0, contention="ps")
        events = EventQueue()
        manager = WanManager(topo, events, ["edge", "cloud"])
        transfers = {0: manager.submit(_task(0, 4.0), 0, 1, 0.0)}
        # At t=2 the first flow has 2 MB left; a 2 MB joiner halves its rate.
        # Pop nothing before 2.0; manually submit the joiner mid-flight.
        assert events.next_time() == 4.0
        transfers[1] = manager.submit(_task(1, 2.0), 0, 1, 2.0)
        deliveries = {}
        while events:
            event = events.pop()
            if event.type is EventType.LINK_TRANSFER:
                WanManager.on_link_event(event, event.time)
            else:
                deliveries[event.payload.id] = event.time
                manager.on_delivered(transfers[event.payload.id], event.time)
        # From t=2 both drain at 0.5 MB/s; both finish their 2 MB at t=6.
        assert deliveries == {0: 6.0, 1: 6.0}


class TestCancellation:
    def _run_scenario(self, tasks, contention, *, latency=1.0, bw=1.0, mb=4.0):
        """Edge tasks forced across one contended link to a fast cloud."""
        task_types = [TaskType("T1", 0, data_in=mb)]
        eet = EETMatrix(
            np.array([[50.0, 2.0]]), task_types, ["SLOW", "FAST"]
        )
        workload = Workload(
            task_types=task_types,
            tasks=[
                Task(
                    id=i,
                    task_type=task_types[0],
                    arrival_time=arrival,
                    deadline=deadline,
                )
                for i, (arrival, deadline) in enumerate(tasks)
            ],
        )
        topo = InterClusterTopology()
        topo.set_link(
            "edge", "cloud", latency, bw,
            contention=contention, energy_per_mb=2.0,
        )
        federation = FederationSpec(
            clusters=[
                ClusterSpec(name="edge", machine_counts={"SLOW": 1}, weight=1.0),
                ClusterSpec(name="cloud", machine_counts={"FAST": 4}, weight=0.0),
            ],
            # Route everything to the cloud, unconditionally: the gateway
            # must not dodge the congested link we are trying to exercise.
            gateway="RANDOM_SPLIT",
            gateway_params={"weights": [0.0, 1.0]},
            topology=topo,
        )
        return Scenario(
            eet=eet,
            machine_counts={"SLOW": 1, "FAST": 4},
            scheduler="MECT",
            workload=workload,
            federation=federation,
            seed=3,
            name="wan-cancel-test",
        ).run()

    def test_queued_transfer_cancelled_frees_its_slot(self):
        # t0 serialises 0→4. t1 queues behind it but dies at t=2 while
        # QUEUED. t2 (arrived 0.5) then serialises 4→8 — NOT 8→12: the
        # cancelled transfer must not hold its reserved link time.
        result = self._run_scenario(
            [(0.0, 100.0), (0.0, 2.0), (0.5, 100.0)], "fifo"
        )
        summary = result.summary
        assert summary.total_tasks == 3
        assert summary.completed == 2
        assert summary.cancelled == 1
        # t2 delivered at 9 (not 13), executes 2s on the idle FAST machine.
        assert summary.makespan == 11.0
        usage = result.wan_links["edge<->cloud"]
        assert usage.delivered == 2
        assert usage.abandoned == 1
        # The queued cancel crossed zero payload: energy for exactly 8 MB.
        assert usage.transfer_energy == 16.0
        assert usage.mb_abandoned == 4.0

    def test_serving_transfer_cancelled_frees_the_pipe_immediately(self):
        # t0 serialises from 0 but dies mid-service at t=2; t1 (queued)
        # then serialises 2→6 and is delivered at 7.
        result = self._run_scenario([(0.0, 2.0), (0.0, 100.0)], "fifo")
        summary = result.summary
        assert summary.completed == 1
        assert summary.cancelled == 1
        assert summary.makespan == 9.0  # delivered 7.0 + 2.0 execution
        usage = result.wan_links["edge<->cloud"]
        # Half the payload crossed before the cancel: 2 MB * 2 J/MB, plus
        # the full 4 MB * 2 J/MB of the survivor.
        assert usage.transfer_energy == 12.0
        assert usage.busy_time == 6.0

    def test_ps_member_cancelled_speeds_up_the_rest(self):
        # Both share 1 MB/s from t=0 (0.5 each). t1 dies at t=2 having
        # crossed 1 MB; t0 then drains its remaining 3 MB at full rate,
        # finishing serialisation at t=5, delivered 6, executed by 8.
        result = self._run_scenario([(0.0, 100.0), (0.0, 2.0)], "ps")
        summary = result.summary
        assert summary.completed == 1
        assert summary.cancelled == 1
        assert summary.makespan == 8.0
        usage = result.wan_links["edge<->cloud"]
        assert usage.transfer_energy == (4.0 + 1.0) * 2.0
        assert usage.mb_delivered == 4.0
        assert usage.mb_abandoned == 4.0

    def test_conservation_under_contended_cancellations(self):
        # A pile of overlapping transfers with deadlines straddling every
        # phase (queued / serving / propagating / delivered).
        tasks = [(0.1 * i, 0.1 * i + 2.0 + 1.5 * (i % 4)) for i in range(24)]
        for contention in ("fifo", "ps"):
            result = self._run_scenario(tasks, contention)
            summary = result.summary
            assert summary.total_tasks == 24
            assert (
                summary.completed + summary.cancelled + summary.missed == 24
            )
            usage = result.wan_links["edge<->cloud"]
            assert usage.delivered + usage.abandoned == 24

    def test_cancel_during_propagation_keeps_payload_charged(self):
        # Serialisation 0→4 done; latency 3 means delivery at 7, but the
        # deadline fires at 5 (mid-propagation). The payload crossed, so
        # the full transfer energy stays charged and the pipe was free
        # from t=4.
        result = self._run_scenario(
            [(0.0, 5.0)], "fifo", latency=3.0
        )
        summary = result.summary
        assert summary.cancelled == 1
        usage = result.wan_links["edge<->cloud"]
        assert usage.abandoned == 1
        assert usage.transfer_energy == 8.0
        assert usage.mb_delivered == 4.0


class TestEnergyWithoutTraffic:
    def test_idle_power_accrues_on_untouched_links(self):
        # An idle WAN port burns joules whether or not traffic arrives:
        # energy-bearing links must appear in the report (with pure idle
        # energy) even when no offload ever touched them.
        topo = InterClusterTopology()
        topo.set_link("a", "b", 0.1, 8.0, contention="fifo", idle_watts=2.0)
        topo.set_link("a", "c", 0.1, 8.0, contention="fifo", idle_watts=2.0)
        events = EventQueue()
        manager = WanManager(topo, events, ["a", "b", "c"])
        transfer = manager.submit(_task(0, 4.0), 0, 1, 0.0)  # a->b only
        _drain(manager, events)
        usage = manager.usage(end_time=100.0)
        assert set(usage) == {"a<->b", "a<->c"}
        untouched = usage["a<->c"]
        assert untouched.delivered == 0
        assert untouched.idle_energy == pytest.approx(200.0)
        assert transfer is not None

    def test_default_link_energy_materialises_every_pair(self):
        topo = InterClusterTopology(default=Link(0.0, 0.0, idle_watts=1.0))
        events = EventQueue()
        manager = WanManager(topo, events, ["a", "b", "c"])
        usage = manager.usage(end_time=10.0)
        assert set(usage) == {"a<->b", "a<->c", "b<->c"}
        assert all(u.idle_energy == pytest.approx(10.0) for u in usage.values())

    def test_plain_explicit_link_overriding_energy_default_stays_lazy(self):
        # An explicit plain link overrides an energy-bearing default; it
        # must not get an all-zero report row from the default's loop.
        topo = InterClusterTopology(
            links={("a", "b"): Link(0.1, 10.0)},
            default=Link(0.05, 50.0, energy_per_mb=1.0),
        )
        manager = WanManager(topo, EventQueue(), ["a", "b", "c"])
        assert set(manager.usage(end_time=10.0)) == {"a<->c", "b<->c"}

    def test_zero_delay_offloads_count_in_link_stats(self):
        # delay == 0 (trivial link): the offload is instant, but the WAN
        # table must still agree with the routing matrix about traffic.
        topo = InterClusterTopology()  # default zero link, no energy
        events = EventQueue()
        manager = WanManager(topo, events, ["a", "b"])
        assert manager.submit(_task(0, 4.0), 0, 1, 0.0) is None
        usage = manager.usage(end_time=10.0)
        assert usage["a<->b"].delivered == 1
        assert usage["a<->b"].mb_delivered == 4.0


class TestGatewaySignals:
    def test_queue_depth_and_estimated_delay_reflect_backlog(self):
        topo = InterClusterTopology()
        topo.set_link("edge", "cloud", 1.0, 1.0, contention="fifo")
        events = EventQueue()
        manager = WanManager(topo, events, ["edge", "cloud"])
        assert manager.queue_depth("edge", "cloud") == 0
        assert manager.estimated_delay("edge", "cloud", 4.0, 0.0) == 5.0
        manager.submit(_task(0, 4.0), 0, 1, 0.0)
        manager.submit(_task(1, 4.0), 0, 1, 0.0)
        assert manager.queue_depth("edge", "cloud") == 2
        # Head has 4s service left + 4 MB queued + own 4 MB + latency.
        assert manager.estimated_delay("edge", "cloud", 4.0, 0.0) == 13.0
        # Symmetric: the reverse direction sees the same pipe.
        assert manager.queue_depth("cloud", "edge") == 2

    def test_congestion_aware_gateway_avoids_the_backed_up_link(self):
        # Two remote clusters with identical machines; cloud_a's link is
        # backed up, cloud_b's is clear. EET_AWARE_REMOTE must route the
        # next task to cloud_b once cloud_a's estimated WAN delay exceeds
        # the alternative.
        task_types = [TaskType("T1", 0, data_in=4.0)]
        eet = EETMatrix(
            np.array([[50.0, 2.0, 2.0]]),
            task_types,
            ["SLOW", "FAST_A", "FAST_B"],
        )
        tasks = [
            Task(id=i, task_type=task_types[0], arrival_time=0.0,
                 deadline=1000.0)
            for i in range(4)
        ]
        workload = Workload(task_types=task_types, tasks=tasks)
        topo = InterClusterTopology()
        topo.set_link("edge", "cloud_a", 0.5, 1.0, contention="fifo")
        topo.set_link("edge", "cloud_b", 0.5, 1.0, contention="fifo")
        federation = FederationSpec(
            clusters=[
                ClusterSpec(name="edge", machine_counts={"SLOW": 1}, weight=1.0),
                ClusterSpec(name="cloud_a", machine_counts={"FAST_A": 4}, weight=0.0),
                ClusterSpec(name="cloud_b", machine_counts={"FAST_B": 4}, weight=0.0),
            ],
            gateway="EET_AWARE_REMOTE",
            topology=topo,
        )
        result = Scenario(
            eet=eet,
            machine_counts={"SLOW": 1, "FAST_A": 4, "FAST_B": 4},
            scheduler="MECT",
            workload=workload,
            federation=federation,
            seed=3,
            name="congestion-aware-test",
        ).run()
        arrivals = result.arrivals_by_cluster()
        # The overlap model would dump all four on one cloud; the
        # congestion-aware estimate spreads them across both links.
        assert arrivals["cloud_a"] > 0
        assert arrivals["cloud_b"] > 0
        assert result.summary.completed == 4


class TestPhases:
    def test_phase_progression_fifo(self):
        topo = InterClusterTopology()
        topo.set_link("edge", "cloud", 1.0, 1.0, contention="fifo")
        events = EventQueue()
        manager = WanManager(topo, events, ["edge", "cloud"])
        first = manager.submit(_task(0, 4.0), 0, 1, 0.0)
        second = manager.submit(_task(1, 4.0), 0, 1, 0.0)
        assert first.phase is TransferPhase.SERVING
        assert second.phase is TransferPhase.QUEUED
        event = events.pop()
        assert event.type is EventType.LINK_TRANSFER
        WanManager.on_link_event(event, event.time)
        assert first.phase is TransferPhase.PROPAGATING
        assert second.phase is TransferPhase.SERVING
