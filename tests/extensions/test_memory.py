"""Memory / multi-tenancy extension: admission and deferral."""

import numpy as np
import pytest

from repro.core.config import Scenario
from repro.machines.eet import EETMatrix
from repro.memory.allocation import fits_in_memory, memory_in_use, memory_pressure
from repro.tasks.task import Task
from repro.tasks.task_type import TaskType
from repro.tasks.workload import Workload


def build_system(capacity=1000.0, footprints=(700.0, 700.0)):
    types = [
        TaskType("big1", 0, memory=footprints[0]),
        TaskType("big2", 1, memory=footprints[1]),
    ]
    eet = EETMatrix(np.array([[5.0], [5.0]]), types, ["M"])
    return types, eet


class TestAllocationHelpers:
    def test_memory_in_use_counts_queued_and_running(self):
        from repro.machines.cluster import Cluster

        types, eet = build_system()
        cluster = Cluster.build(eet, {"M": 1}, memory_capacities={"M": 2000.0})
        machine = cluster[0]
        t0 = Task(id=0, task_type=types[0], arrival_time=0.0, deadline=99.0)
        t0.enqueue_batch()
        machine.enqueue(t0, 0.0)
        machine.start_next(0.0)
        t1 = Task(id=1, task_type=types[1], arrival_time=0.0, deadline=99.0)
        t1.enqueue_batch()
        machine.enqueue(t1, 0.0)
        assert memory_in_use(machine) == pytest.approx(1400.0)

    def test_fits_in_memory(self):
        from repro.machines.cluster import Cluster

        types, eet = build_system()
        cluster = Cluster.build(eet, {"M": 1}, memory_capacities={"M": 1000.0})
        machine = cluster[0]
        t0 = Task(id=0, task_type=types[0], arrival_time=0.0, deadline=99.0)
        t0.enqueue_batch()
        machine.enqueue(t0, 0.0)
        t1 = Task(id=1, task_type=types[1], arrival_time=0.0, deadline=99.0)
        assert not fits_in_memory(machine, t1)

    def test_unconstrained_machine_always_fits(self):
        from repro.machines.cluster import Cluster

        types, eet = build_system()
        cluster = Cluster.build(eet, {"M": 1})
        t = Task(id=0, task_type=types[0], arrival_time=0.0, deadline=99.0)
        assert fits_in_memory(cluster[0], t)

    def test_memory_pressure(self):
        from repro.machines.cluster import Cluster

        types, eet = build_system()
        cluster = Cluster.build(eet, {"M": 1}, memory_capacities={"M": 1400.0})
        machine = cluster[0]
        t0 = Task(id=0, task_type=types[0], arrival_time=0.0, deadline=99.0)
        t0.enqueue_batch()
        machine.enqueue(t0, 0.0)
        pressure = memory_pressure(cluster)
        assert pressure["M-0"] == pytest.approx(0.5)


class TestInSimulation:
    def test_memory_defers_second_task(self):
        """Two 700 MB tasks on a 1000 MB machine: strictly sequential."""
        types, eet = build_system()
        tasks = [
            Task(id=0, task_type=types[0], arrival_time=0.0, deadline=99.0),
            Task(id=1, task_type=types[1], arrival_time=0.0, deadline=99.0),
        ]
        workload = Workload(task_types=types, tasks=tasks)
        scenario = Scenario(
            eet=eet,
            machine_counts={"M": 1},
            scheduler="MM",
            queue_capacity=5,
            workload=workload,
            memory_capacities={"M": 1000.0},
        )
        result = scenario.run()
        records = {r["task_id"]: r for r in result.task_records}
        assert records[0]["start_time"] == 0.0
        # Task 1 could not even be queued until task 0 finished at t=5.
        assert records[1]["start_time"] == pytest.approx(5.0)
        assert result.summary.completed == 2

    def test_no_capacity_means_concurrent_queueing(self):
        types, eet = build_system()
        tasks = [
            Task(id=0, task_type=types[0], arrival_time=0.0, deadline=99.0),
            Task(id=1, task_type=types[1], arrival_time=0.0, deadline=99.0),
        ]
        workload = Workload(task_types=types, tasks=tasks)
        scenario = Scenario(
            eet=eet,
            machine_counts={"M": 1},
            scheduler="MM",
            queue_capacity=5,
            workload=workload,
        )
        result = scenario.run()
        records = {r["task_id"]: r for r in result.task_records}
        # Without the memory constraint, task 1 queues at t=0 and starts at 5
        # as well — but it was *assigned* at 0 rather than deferred.
        assert records[1]["assigned_time"] == 0.0

    def test_memory_deferral_assigned_later(self):
        types, eet = build_system()
        tasks = [
            Task(id=0, task_type=types[0], arrival_time=0.0, deadline=99.0),
            Task(id=1, task_type=types[1], arrival_time=0.0, deadline=99.0),
        ]
        workload = Workload(task_types=types, tasks=tasks)
        scenario = Scenario(
            eet=eet,
            machine_counts={"M": 1},
            scheduler="MM",
            queue_capacity=5,
            workload=workload,
            memory_capacities={"M": 1000.0},
        )
        result = scenario.run()
        records = {r["task_id"]: r for r in result.task_records}
        assert records[1]["assigned_time"] == pytest.approx(5.0)
