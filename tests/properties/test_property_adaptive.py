"""Properties of the learning gateway and the hysteresis trigger.

The bandit's regression surface is *reproducibility*: its decisions must be
a pure function of (configuration, observed outcome history), because the
golden suite and the tournament leaderboard both pin runs that route
through it. These properties drive two identically-configured gateways
through arbitrary interleavings of routing decisions and terminal outcomes
and demand bit-identical behaviour, plus the bookkeeping invariants that
make the reward ledger auditable.

The watermark rebalancer's contract is the *dead band*: a source whose
pressure gap sits between the watermarks must never start shedding — only
continue a shed begun above the high watermark, until it drains below the
low one.
"""

from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation.migration import Rebalancer
from repro.federation.spec import MigrationSpec
from repro.scheduling.federation import AdaptiveGateway
from repro.tasks.task import TaskStatus

N_CLUSTERS = 3
TASK_TYPES = ("alpha", "beta")

#: One routing episode: where the task arrives, what it is, and (if the
#: run resolves it) how it ended.
episodes = st.lists(
    st.fixed_dictionaries(
        {
            "origin": st.integers(min_value=0, max_value=N_CLUSTERS - 1),
            "ttype": st.sampled_from(TASK_TYPES),
            "resolve": st.booleans(),
            "ontime": st.booleans(),
            "response": st.floats(
                min_value=0.0, max_value=500.0,
                allow_nan=False, allow_infinity=False,
            ),
        }
    ),
    min_size=1,
    max_size=60,
)

gateway_configs = st.fixed_dictionaries(
    {
        "strategy": st.sampled_from(("epsilon", "ucb")),
        "epsilon": st.floats(min_value=0.0, max_value=1.0),
        "ucb_c": st.floats(min_value=0.0, max_value=3.0),
        "seed": st.integers(min_value=0, max_value=2**20),
    }
)


def _route(gateway: AdaptiveGateway, task_id: int, episode: dict) -> int:
    task = SimpleNamespace(
        id=task_id, task_type=SimpleNamespace(name=episode["ttype"])
    )
    ctx = SimpleNamespace(
        task=task, shards=[None] * N_CLUSTERS, origin=episode["origin"]
    )
    return gateway.choose_cluster(ctx)


def _resolve(gateway: AdaptiveGateway, task_id: int, episode: dict) -> None:
    arrival = 10.0
    completion = arrival + episode["response"]
    deadline = completion + 1.0 if episode["ontime"] else completion - 1.0
    task = SimpleNamespace(
        id=task_id,
        status=TaskStatus.COMPLETED,
        arrival_time=arrival,
        completion_time=completion,
        deadline=deadline,
    )
    gateway.record_outcome(task, completion)


def _drive(gateway: AdaptiveGateway, trace: list[dict]) -> list[int]:
    decisions = []
    for task_id, episode in enumerate(trace):
        decisions.append(_route(gateway, task_id, episode))
        if episode["resolve"]:
            _resolve(gateway, task_id, episode)
    return decisions


@given(config=gateway_configs, trace=episodes)
@settings(max_examples=80, deadline=None)
def test_same_seed_same_history_bit_identical(config, trace):
    """Two identically-configured gateways agree on every decision and on
    the full reward ledger — the determinism the golden pins rely on."""
    first = AdaptiveGateway(**config)
    second = AdaptiveGateway(**config)
    assert _drive(first, trace) == _drive(second, trace)
    assert first.ledger() == second.ledger()
    assert first.arm_stats() == second.arm_stats()


@given(config=gateway_configs, trace=episodes)
@settings(max_examples=80, deadline=None)
def test_reset_replays_identically(config, trace):
    """reset() restores the exact initial state, exploration stream included."""
    gateway = AdaptiveGateway(**config)
    before = _drive(gateway, trace)
    ledger = gateway.ledger()
    gateway.reset()
    assert gateway.decisions == 0
    assert gateway.arm_stats() == {}
    assert _drive(gateway, trace) == before
    assert gateway.ledger() == ledger


@given(config=gateway_configs, trace=episodes)
@settings(max_examples=80, deadline=None)
def test_arm_statistics_invariants(config, trace):
    """The ledger balances: arm counts sum to credited outcomes, every
    decision is either credited or still pending, rewards stay in [0, 1]."""
    gateway = AdaptiveGateway(**config)
    decisions = _drive(gateway, trace)
    assert gateway.decisions == len(decisions) == len(trace)
    stats = gateway.arm_stats()
    assert sum(count for count, _ in stats.values()) == (
        gateway.rewards_recorded
    )
    assert gateway.rewards_recorded == len(gateway.ledger())
    assert gateway.pending + gateway.rewards_recorded == gateway.decisions
    for _, _, reward in gateway.ledger():
        assert 0.0 <= reward <= 1.0
    for count, total in stats.values():
        assert count > 0
        assert 0.0 <= total <= count  # finite by construction
    for destination in decisions:
        assert 0 <= destination < N_CLUSTERS


@given(config=gateway_configs, trace=episodes)
@settings(max_examples=50, deadline=None)
def test_untried_arms_play_first(config, trace):
    """With every outcome credited immediately, the first N_CLUSTERS
    decisions per (origin, type) context cover destinations 0..N-1 in
    index order — the deterministic coverage pass before any exploit."""
    gateway = AdaptiveGateway(**config)
    observed: dict[tuple[int, str], int] = {}
    for task_id, episode in enumerate(trace):
        context = (episode["origin"], episode["ttype"])
        seen = observed.setdefault(context, 0)
        destination = _route(gateway, task_id, episode)
        if seen < N_CLUSTERS:
            assert destination == seen
        _resolve(gateway, task_id, episode)
        observed[context] = seen + 1


def _fresh_rebalancer(high: float, low: float) -> Rebalancer:
    federation = SimpleNamespace(shards=[None, None])
    spec = MigrationSpec(high_watermark=high, low_watermark=low)
    return Rebalancer(federation, spec)


watermarks = st.tuples(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
).map(lambda pair: (max(pair), min(pair)))


@given(
    marks=watermarks,
    gap=st.floats(min_value=-10.0, max_value=20.0, allow_nan=False),
)
@settings(max_examples=200, deadline=None)
def test_hysteresis_never_starts_in_the_dead_band(marks, gap):
    """A source not already shedding fires iff the gap reaches the high
    watermark — gaps inside the dead band (and below) never start a shed."""
    high, low = marks
    rebalancer = _fresh_rebalancer(high, low)
    fired = rebalancer._should_fire(0, gap)
    assert fired == (gap >= high)
    assert (0 in rebalancer.shedding) == fired


@given(
    marks=watermarks,
    gaps=st.lists(
        st.floats(min_value=-10.0, max_value=20.0, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
)
@settings(max_examples=100, deadline=None)
def test_hysteresis_state_machine(marks, gaps):
    """Replaying any gap sequence, the trigger matches the two-state
    reference machine: start at >= high, keep firing until <= low."""
    high, low = marks
    rebalancer = _fresh_rebalancer(high, low)
    shedding = False
    for gap in gaps:
        expected = (gap > low) if shedding else (gap >= high)
        shedding = expected
        assert rebalancer._should_fire(0, gap) == expected
        assert (0 in rebalancer.shedding) == shedding


@given(
    gap=st.floats(min_value=-10.0, max_value=20.0, allow_nan=False),
    threshold=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_no_watermarks_is_the_plain_threshold(gap, threshold):
    """Watermarks left unset, the trigger is the original stateless
    pressure_gap comparison — the compatibility the older pins rely on."""
    federation = SimpleNamespace(shards=[None, None])
    rebalancer = Rebalancer(
        federation, MigrationSpec(pressure_gap=threshold)
    )
    assert rebalancer._should_fire(0, gap) == (gap >= threshold)
    assert not rebalancer.shedding
