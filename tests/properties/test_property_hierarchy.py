"""Properties of hierarchical federations over random trees.

Four laws that must hold for *every* federation tree, not just the shipped
presets:

1. spec JSON round-trips losslessly (hierarchy is a reproducible artifact),
2. a rollup's root totals are exactly the flat sum over its leaves,
3. WAN conservation — ``attempted == delivered + cancelled_in_flight`` —
   holds at every node of a finished run, interior nodes included,
4. a route never leaves the origin/destination subtrees: every hop is an
   ancestor-or-self of one endpoint (no sibling subtree ever relays
   foreign traffic).
"""

import itertools
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import Scenario
from repro.federation import ClusterSpec, FederationSpec, RegionSpec
from repro.federation.hierarchy import FederationTree
from repro.machines.eet import EETMatrix
from repro.metrics.rollup import TreeRollup
from repro.net import InterClusterTopology
from repro.net.topology import Link
from repro.tasks.task import Task
from repro.tasks.task_type import TaskType
from repro.tasks.workload import Workload


@st.composite
def federation_specs(draw, max_depth=3):
    """A random hierarchical FederationSpec with unique node names."""
    counter = itertools.count()

    def uplink():
        if draw(st.booleans()):
            return Link(
                latency=draw(
                    st.floats(min_value=0.01, max_value=1.0,
                              allow_nan=False)
                ),
                bandwidth=draw(st.sampled_from([0.0, 1.0, 8.0])),
            )
        return None

    def node(depth):
        name = f"n{next(counter)}"
        if depth >= max_depth or draw(st.booleans()):
            return ClusterSpec(
                name=name,
                machine_counts={"M": draw(st.integers(1, 2))},
                weight=1.0,
                uplink=uplink(),
            )
        return RegionSpec(
            name=name,
            children=[
                node(depth + 1)
                for _ in range(draw(st.integers(1, 3)))
            ],
            uplink=uplink(),
        )

    children = [node(1) for _ in range(draw(st.integers(1, 3)))]
    return FederationSpec(
        children=children,
        gateway="TREE_PRESSURE",
        topology=InterClusterTopology(
            default=Link(0.2, 2.0, contention="fifo")
        ),
    )


def _scenario(spec, tasks, *, seed):
    task_types = [TaskType("T1", 0, data_in=2.0)]
    eet = EETMatrix(np.array([[3.0]]), task_types, ["M"])
    workload = Workload(
        task_types=task_types,
        tasks=[
            Task(id=i, task_type=task_types[0], arrival_time=a, deadline=d)
            for i, (a, d) in enumerate(tasks)
        ],
    )
    return Scenario(
        eet=eet,
        machine_counts=spec.total_machine_counts(),
        scheduler="MECT",
        workload=workload,
        federation=spec,
        seed=seed,
        name="prop-hier",
    )


@given(spec=federation_specs())
@settings(max_examples=60, deadline=None)
def test_random_trees_round_trip_json(spec):
    wire = json.dumps(spec.to_dict(), sort_keys=True)
    rebuilt = FederationSpec.from_dict(json.loads(wire))
    assert json.dumps(rebuilt.to_dict(), sort_keys=True) == wire
    assert rebuilt.names == spec.names
    # The rebuilt tree compiles to the identical topology.
    assert (
        FederationTree(rebuilt).hop_topology.to_dict()
        == FederationTree(spec).hop_topology.to_dict()
    )


@given(
    spec=federation_specs(),
    values=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
    ),
)
@settings(max_examples=60, deadline=None)
def test_rollup_root_equals_flat_leaf_sum(spec, values):
    tree = FederationTree(spec)
    stats = [
        {"v": values[i % len(values)], "one": 1.0}
        for i in range(tree.n_leaves)
    ]
    rollup = TreeRollup.from_leaves(tree.leaf_paths, stats)
    assert rollup.root.stats["v"] == sum(s["v"] for s in stats)
    assert rollup.root.stats["one"] == tree.n_leaves
    assert rollup.root.n_leaves == tree.n_leaves
    # Every interior node is the sum of its direct children ("one" is
    # integer-valued so exact; "v" only up to float association order —
    # the fold accumulates leaf-by-leaf, the check child-by-child).
    for node in rollup:
        children = rollup.children_of(node)
        if not children:
            continue
        assert node.stats["one"] == sum(c.stats["one"] for c in children)
        assert node.stats["v"] == pytest.approx(
            sum(c.stats["v"] for c in children), rel=1e-9, abs=1e-9
        )


@given(
    spec=federation_specs(),
    seed=st.integers(min_value=0, max_value=2**16),
    tight=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_wan_conservation_at_every_node(spec, seed, tight):
    deadline = 4.0 if tight else 500.0
    tasks = [(0.4 * i, 0.4 * i + deadline) for i in range(12)]
    result = _scenario(spec, tasks, seed=seed).run()
    rollup = result.tree
    for node in rollup:
        stats = node.stats
        assert stats["wan_attempted"] == (
            stats["wan_delivered"] + stats["wan_cancelled_in_flight"]
        ), node.wire
        # Every routed task reached a terminal state by the end.
        assert stats["routed"] == (
            stats["completed"] + stats["missed"] + stats["cancelled"]
        ), node.wire
    assert rollup.root.stats["routed"] == len(tasks)
    assert rollup.root.stats["wan_attempted"] == result.offloaded


@given(spec=federation_specs())
@settings(max_examples=60, deadline=None)
def test_routes_never_leave_the_endpoint_subtrees(spec):
    tree = FederationTree(spec)
    pairs = itertools.islice(
        itertools.product(range(tree.n_leaves), repeat=2), 64
    )
    for origin, destination in pairs:
        route = tree.route(origin, destination)
        assert route[0] == origin
        assert route[-1] == destination
        for a, b in zip(route, route[1:]):
            # Consecutive hops are tree-adjacent (child <-> parent).
            assert tree.parent[a] == b or tree.parent[b] == a
        for node in route:
            # Ancestor-or-self of an endpoint: no sibling subtree relays.
            leaves = tree.leaves_under[node]
            assert origin in leaves or destination in leaves
