"""Property: Scenario.to_dict()/from_dict() is lossless.

Hypothesis-generated scenarios exercise the fields the serialisation layer
historically under-covered: the ``network`` mapping, the ``failure_model``
(including per-machine-type overrides) and the federation layer
(clusters, gateway, inter-cluster topology). The round-trip must preserve
them exactly — both through plain dicts and through JSON text.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import Scenario
from repro.federation import ClusterSpec, FederationSpec
from repro.machines.eet import EETMatrix
from repro.machines.failures import FailureModel
from repro.net import InterClusterTopology, Link
from repro.tasks.task_type import TaskType

MACHINE_TYPES = ["M1", "M2", "M3"]

finite_latency = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
finite_bandwidth = st.floats(
    min_value=0.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)
positive_time = st.floats(
    min_value=0.1, max_value=10_000.0, allow_nan=False, allow_infinity=False
)


def base_eet() -> EETMatrix:
    task_types = [
        TaskType("T1", 0, relative_deadline=40.0, data_in=2.0),
        TaskType("T2", 1, relative_deadline=60.0, data_out=1.0),
    ]
    return EETMatrix(
        np.array([[4.0, 8.0, 6.0], [9.0, 3.0, 5.0]]),
        task_types,
        list(MACHINE_TYPES),
    )


network_strategy = st.dictionaries(
    st.sampled_from(MACHINE_TYPES),
    st.tuples(finite_latency, finite_bandwidth),
    max_size=len(MACHINE_TYPES),
)

failure_strategy = st.one_of(
    st.none(),
    st.builds(
        FailureModel,
        mtbf=positive_time,
        mttr=positive_time,
        per_machine_type=st.dictionaries(
            st.sampled_from(MACHINE_TYPES),
            st.tuples(positive_time, positive_time),
            max_size=2,
        ),
    ),
)


@st.composite
def federation_strategy(draw):
    if draw(st.booleans()):
        return None
    n_clusters = draw(st.integers(min_value=1, max_value=3))
    # Partition one machine type per cluster (plus spares on cluster 0) so
    # total_machine_counts always matches a constructible scenario.
    clusters = []
    for i in range(n_clusters):
        clusters.append(
            ClusterSpec(
                name=f"site{i}",
                machine_counts={MACHINE_TYPES[i]: draw(st.integers(1, 3))},
                scheduler=draw(st.sampled_from([None, "MECT", "FCFS"])),
                weight=draw(
                    st.floats(
                        min_value=0.0,
                        max_value=5.0,
                        allow_nan=False,
                        allow_infinity=False,
                    )
                ),
            )
        )
    if all(c.weight == 0.0 for c in clusters):
        clusters[0].weight = 1.0
    topology = InterClusterTopology(
        default=Link(draw(finite_latency), draw(finite_bandwidth)),
        symmetric=draw(st.booleans()),
    )
    for i in range(n_clusters):
        for j in range(i + 1, n_clusters):
            if draw(st.booleans()):
                topology.set_link(
                    f"site{i}",
                    f"site{j}",
                    draw(finite_latency),
                    draw(finite_bandwidth),
                )
    return FederationSpec(
        clusters=clusters,
        gateway=draw(
            st.sampled_from(
                ["LOCALITY_FIRST", "LEAST_LOADED", "EET_AWARE_REMOTE"]
            )
        ),
        topology=topology,
    )


def build_scenario_under_test(network, failure_model, federation) -> Scenario:
    if federation is not None:
        machine_counts = federation.total_machine_counts()
    else:
        machine_counts = {name: 1 for name in MACHINE_TYPES}
    return Scenario(
        eet=base_eet(),
        machine_counts=machine_counts,
        scheduler="MECT",
        generator={"duration": 50.0, "intensity": "low"},
        network=network,
        enable_network=bool(network),
        failure_model=failure_model,
        federation=federation,
        seed=7,
        name="roundtrip",
    )


@given(
    network=network_strategy,
    failure_model=failure_strategy,
    federation=federation_strategy(),
)
@settings(max_examples=40, deadline=None)
def test_to_dict_from_dict_is_lossless(network, failure_model, federation):
    scenario = build_scenario_under_test(network, failure_model, federation)
    rebuilt = Scenario.from_dict(scenario.to_dict())
    assert rebuilt.to_dict() == scenario.to_dict()
    # Field-level checks, not just dict equality:
    assert rebuilt.network == scenario.network
    if failure_model is None:
        assert rebuilt.failure_model is None
    else:
        assert rebuilt.failure_model.mtbf == failure_model.mtbf
        assert rebuilt.failure_model.mttr == failure_model.mttr
        assert dict(rebuilt.failure_model.per_machine_type) == {
            k: tuple(v) for k, v in failure_model.per_machine_type.items()
        }
    if federation is None:
        assert rebuilt.federation is None
    else:
        assert rebuilt.federation.names == federation.names
        assert rebuilt.federation.gateway == federation.gateway
        assert (
            rebuilt.federation.topology.to_dict()
            == federation.topology.to_dict()
        )
        for original, restored in zip(
            federation.clusters, rebuilt.federation.clusters
        ):
            assert restored == original


@given(
    network=network_strategy,
    failure_model=failure_strategy,
    federation=federation_strategy(),
)
@settings(max_examples=15, deadline=None)
def test_json_text_round_trip(network, failure_model, federation):
    scenario = build_scenario_under_test(network, failure_model, federation)
    text = scenario.to_json()
    rebuilt = Scenario.from_json(text)
    assert rebuilt.to_dict() == scenario.to_dict()
    # The JSON really is plain JSON (no repr leakage).
    json.loads(text)
