"""Property-based tests of scheduling policies against reference semantics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.cluster import Cluster
from repro.machines.eet import EETMatrix
from repro.scheduling.context import SchedulingContext
from repro.scheduling.registry import create_scheduler
from repro.tasks.task import Task
from repro.tasks.task_type import TaskType


@st.composite
def mapping_instance(draw):
    n_types = draw(st.integers(min_value=1, max_value=4))
    n_machines = draw(st.integers(min_value=1, max_value=4))
    values = np.array(
        [
            [
                draw(st.floats(min_value=0.5, max_value=30.0, allow_nan=False))
                for _ in range(n_machines)
            ]
            for _ in range(n_types)
        ]
    )
    task_types = [TaskType(f"T{i}", i) for i in range(n_types)]
    eet = EETMatrix(values, task_types, [f"M{j}" for j in range(n_machines)])
    n_tasks = draw(st.integers(min_value=1, max_value=10))
    specs = [
        (
            draw(st.integers(0, n_types - 1)),
            draw(st.floats(min_value=1.0, max_value=200.0, allow_nan=False)),
        )
        for _ in range(n_tasks)
    ]
    return eet, specs


def make_context(eet, specs, capacity=float("inf")):
    cluster = Cluster.build(
        eet, {n: 1 for n in eet.machine_type_names}, queue_capacity=capacity
    )
    tasks = []
    for i, (ti, deadline) in enumerate(specs):
        t = Task(
            id=i,
            task_type=eet.task_types[ti],
            arrival_time=0.0,
            deadline=deadline,
        )
        t.enqueue_batch()
        tasks.append(t)
    return SchedulingContext(
        now=0.0, pending=tasks, cluster=cluster,
        rng=np.random.default_rng(0),
    ), tasks


@given(mapping_instance())
@settings(max_examples=60, deadline=None)
def test_minmin_matches_reference(instance):
    eet, specs = instance
    ctx, tasks = make_context(eet, specs)
    got = create_scheduler("MM").schedule(ctx)

    values = eet.values
    ready = np.zeros(eet.n_machine_types)
    remaining = list(range(len(tasks)))
    expected = []
    while remaining:
        best = None
        for i in remaining:
            completions = ready + values[tasks[i].task_type.index]
            j = int(np.argmin(completions))
            key = (completions[j], i, j)
            if best is None or key < best:
                best = key
        _, i, j = best
        expected.append((i, j))
        ready[j] += values[tasks[i].task_type.index][j]
        remaining.remove(i)

    assert [(a.task.id, a.machine.id) for a in got] == expected


@given(mapping_instance())
@settings(max_examples=60, deadline=None)
def test_mect_is_argmin_of_completion(instance):
    eet, specs = instance
    ctx, tasks = make_context(eet, specs)
    scheduler = create_scheduler("MECT")
    for task in tasks:
        single = SchedulingContext(
            now=0.0, pending=[task], cluster=ctx.cluster,
            rng=np.random.default_rng(0),
        )
        (assignment,) = scheduler.schedule(single)
        completions = ctx.cluster.completion_times(task, 0.0)
        assert completions[assignment.machine.id] == completions.min()
        assignment.machine.enqueue(task, 0.0)


@given(mapping_instance())
@settings(max_examples=60, deadline=None)
def test_meet_is_argmin_of_eet(instance):
    eet, specs = instance
    ctx, tasks = make_context(eet, specs)
    scheduler = create_scheduler("MEET")
    for task in tasks:
        single = SchedulingContext(
            now=0.0, pending=[task], cluster=ctx.cluster,
            rng=np.random.default_rng(0),
        )
        (assignment,) = scheduler.schedule(single)
        eets = ctx.cluster.eet_vector(task)
        assert eets[assignment.machine.id] == eets.min()


@given(mapping_instance(), st.integers(min_value=1, max_value=3))
@settings(max_examples=60, deadline=None)
def test_batch_policies_respect_capacity_and_uniqueness(instance, capacity):
    eet, specs = instance
    for policy in ("MM", "MAXMIN", "SUFFERAGE", "MMU", "MSD", "ELARE", "FELARE"):
        ctx, tasks = make_context(eet, specs, capacity=capacity)
        assignments = create_scheduler(policy).schedule(ctx)
        per_machine: dict[int, int] = {}
        seen_tasks = set()
        for a in assignments:
            per_machine[a.machine.id] = per_machine.get(a.machine.id, 0) + 1
            assert a.task.id not in seen_tasks
            seen_tasks.add(a.task.id)
        assert all(v <= capacity for v in per_machine.values())


@given(mapping_instance())
@settings(max_examples=40, deadline=None)
def test_batch_policies_map_everything_when_capacity_allows(instance):
    eet, specs = instance
    for policy in ("MM", "MAXMIN", "SUFFERAGE", "MMU", "MSD", "ELARE", "FELARE"):
        ctx, tasks = make_context(eet, specs, capacity=float("inf"))
        assignments = create_scheduler(policy).schedule(ctx)
        assert len(assignments) == len(tasks)
