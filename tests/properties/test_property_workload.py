"""Property-based tests: workload generation and trace round-trips."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.eet_generation import generate_eet_cvb
from repro.tasks.generator import WorkloadGenerator
from repro.tasks.trace_io import read_workload_csv, write_workload_csv

seeds = st.integers(min_value=0, max_value=2**32 - 1)
intensities = st.one_of(
    st.sampled_from(["low", "medium", "high"]),
    st.floats(min_value=0.1, max_value=4.0, allow_nan=False),
)


@given(seeds, intensities)
@settings(max_examples=30, deadline=None)
def test_generated_workload_invariants(seed, intensity):
    eet = generate_eet_cvb(3, 3, seed=7)
    gen = WorkloadGenerator(eet)
    w = gen.generate(80.0, intensity=intensity, seed=seed)
    arrivals = [t.arrival_time for t in w]
    assert arrivals == sorted(arrivals)
    assert all(0.0 <= a < 80.0 for a in arrivals)
    assert all(t.deadline > t.arrival_time for t in w)
    assert [t.id for t in w] == list(range(len(w)))


@given(seeds)
@settings(max_examples=20, deadline=None)
def test_trace_round_trip(seed):
    eet = generate_eet_cvb(3, 3, seed=3)
    w = WorkloadGenerator(eet).generate(60.0, seed=seed)
    text = write_workload_csv(w)
    again = read_workload_csv(io.StringIO(text))
    assert len(again) == len(w)
    for a, b in zip(w, again):
        assert a.id == b.id
        assert a.task_type.name == b.task_type.name
        assert abs(a.arrival_time - b.arrival_time) < 1e-6
        assert abs(a.deadline - b.deadline) < 1e-6


@given(seeds, st.integers(min_value=1, max_value=60))
@settings(max_examples=20, deadline=None)
def test_generate_count_exact(seed, n):
    eet = generate_eet_cvb(2, 2, seed=1)
    w = WorkloadGenerator(eet).generate_count(n, seed=seed)
    assert len(w) == n
