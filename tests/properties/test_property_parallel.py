"""Property-based equivalence of serial and window-parallel federated runs.

The windowed-parallel engine (:mod:`repro.federation.parallel`) claims *bit*
identity with the serial :class:`~repro.federation.simulator.
FederatedSimulator` — not statistical agreement. These properties put that
claim under randomly generated federations: random cluster counts, machine
mixes, WAN latencies, workloads and seeds, always with the state-blind
RANDOM_SPLIT gateway (the class of routing policies the parallel engine
accepts). Two invariants, mirroring the campaign runner's worker-pool suite
(``tests/experiments/test_runner.py``):

* serial ≡ parallel: identical ``SummaryMetrics`` (global and per-cluster),
  event counts, end times and routing matrices;
* worker-count independence: 1, 2 and 4 workers produce the same result —
  the partition is bookkeeping, never physics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation.parallel import ParallelFederatedSimulator
from repro.federation.simulator import FederatedSimulator
from repro.federation.spec import ClusterSpec, FederationSpec
from repro.machines.eet_generation import generate_eet_cvb
from repro.net.topology import InterClusterTopology
from repro.tasks.task import Task
from repro.tasks.workload import Workload


@st.composite
def random_federation(draw):
    n_clusters = draw(st.integers(min_value=2, max_value=4))
    n_types = draw(st.integers(min_value=1, max_value=3))
    n_machine_types = draw(st.integers(min_value=1, max_value=3))
    eet_seed = draw(st.integers(min_value=0, max_value=10_000))
    eet = generate_eet_cvb(
        n_types, n_machine_types, mean_task=5.0, v_task=0.5, v_machine=0.5,
        seed=eet_seed,
    )
    latency = draw(st.floats(min_value=0.01, max_value=2.0, allow_nan=False))
    bandwidth = draw(st.sampled_from([0.0, 5.0, 50.0]))
    # A latency-only link (bandwidth 0) has nothing to contend for.
    contention = (
        "none" if bandwidth == 0.0
        else draw(st.sampled_from(["none", "fifo", "ps"]))
    )
    scheduler = draw(st.sampled_from(["MECT", "FCFS", "MM", "SUFFERAGE"]))
    spec = FederationSpec(
        clusters=[
            ClusterSpec(
                name=f"c{i}",
                machine_counts={
                    name: draw(st.integers(min_value=1, max_value=2))
                    for name in eet.machine_type_names
                },
                weight=1.0,
            )
            for i in range(n_clusters)
        ],
        gateway="RANDOM_SPLIT",
        topology=InterClusterTopology.uniform(
            [f"c{i}" for i in range(n_clusters)],
            latency=latency,
            bandwidth=bandwidth,
            contention=contention,
        ),
    )
    n_tasks = draw(st.integers(min_value=0, max_value=30))
    tasks = []
    for i in range(n_tasks):
        arrival = draw(
            st.floats(min_value=0.0, max_value=40.0, allow_nan=False)
        )
        slack = draw(
            st.floats(min_value=0.1, max_value=30.0, allow_nan=False)
        )
        tasks.append((i, draw(st.integers(0, n_types - 1)), arrival, slack))
    sim_seed = draw(st.integers(min_value=0, max_value=10_000))
    return eet, spec, scheduler, tasks, sim_seed


def _workload(eet, task_specs):
    task_types = eet.task_types
    return Workload(
        task_types=task_types,
        tasks=[
            Task(
                id=i,
                task_type=task_types[ti],
                arrival_time=arr,
                deadline=arr + slack,
            )
            for i, ti, arr, slack in task_specs
        ],
    )


def _fingerprint(result):
    """Everything observable about a federated run, in comparable form."""
    return (
        result.summary.as_dict(),
        {name: s.as_dict() for name, s in result.per_cluster.items()},
        result.events_processed,
        result.end_time,
        result.routing,
        result.offloaded,
        result.wan_time_total,
        result.energy,
        {name: u.delivered for name, u in result.wan_links.items()},
    )


def _run_serial(eet, spec, scheduler, task_specs, seed):
    sim = FederatedSimulator(
        spec, eet, _workload(eet, task_specs),
        seed=seed, default_scheduler=scheduler,
    )
    return sim.run()


def _run_parallel(eet, spec, scheduler, task_specs, seed, workers):
    sim = ParallelFederatedSimulator(
        spec, eet, _workload(eet, task_specs),
        workers=workers, seed=seed, default_scheduler=scheduler,
    )
    return sim.run()


@given(random_federation())
@settings(max_examples=25, deadline=None)
def test_parallel_matches_serial(federation):
    eet, spec, scheduler, task_specs, seed = federation
    serial = _run_serial(eet, spec, scheduler, task_specs, seed)
    parallel = _run_parallel(eet, spec, scheduler, task_specs, seed, 2)
    assert _fingerprint(parallel) == _fingerprint(serial)


@given(random_federation())
@settings(max_examples=10, deadline=None)
def test_worker_count_independence(federation):
    """1, 2 and 4 workers are the same simulation, exactly."""
    eet, spec, scheduler, task_specs, seed = federation
    prints = [
        _fingerprint(_run_parallel(eet, spec, scheduler, task_specs, seed, w))
        for w in (1, 2, 4)
    ]
    assert prints[0] == prints[1] == prints[2]
