"""Property-based tests: the future-event list is a stable priority queue."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.event_queue import EventQueue
from repro.core.events import Event, EventType

event_types = st.sampled_from(list(EventType))
times = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(st.lists(st.tuples(times, event_types), max_size=200))
def test_pop_order_is_total_order(items):
    queue = EventQueue()
    for t, kind in items:
        queue.push(Event(t, kind))
    popped = list(queue.drain())
    keys = [e.sort_key() for e in popped]
    assert keys == sorted(keys)


@given(st.lists(st.tuples(times, event_types), max_size=200))
def test_len_matches_pushes(items):
    queue = EventQueue()
    for t, kind in items:
        queue.push(Event(t, kind))
    assert len(queue) == len(items)


@given(
    st.lists(st.tuples(times, event_types), min_size=1, max_size=100),
    st.data(),
)
def test_cancellation_removes_exactly_the_cancelled(items, data):
    queue = EventQueue()
    handles = [queue.push(Event(t, kind)) for t, kind in items]
    to_cancel = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(handles) - 1),
            unique=True,
            max_size=len(handles),
        )
    )
    for i in to_cancel:
        queue.cancel(handles[i])
    survivors = {h.seq for i, h in enumerate(handles) if i not in set(to_cancel)}
    popped = {e.seq for e in queue.drain()}
    assert popped == survivors


@given(st.lists(times, min_size=2, max_size=100))
def test_fifo_stability_at_equal_keys(ts):
    """Events with identical (time, priority) pop in push order."""
    queue = EventQueue()
    fixed_time = 5.0
    events = [
        Event(fixed_time, EventType.TASK_ARRIVAL, payload=i)
        for i in range(len(ts))
    ]
    for e in events:
        queue.push(e)
    payloads = [e.payload for e in queue.drain()]
    assert payloads == list(range(len(ts)))


@given(st.lists(st.tuples(times, event_types), min_size=1, max_size=100))
def test_peek_always_matches_next_pop(items):
    queue = EventQueue()
    for t, kind in items:
        queue.push(Event(t, kind))
    while queue:
        head = queue.peek()
        assert queue.pop() is head
