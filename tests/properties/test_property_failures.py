"""Property-based tests: engine invariants survive failure injection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simulator import Simulator
from repro.machines.cluster import Cluster
from repro.machines.eet_generation import generate_eet_cvb
from repro.machines.failures import FailureModel
from repro.scheduling.base import SchedulingMode
from repro.scheduling.registry import create_scheduler
from repro.tasks.task import Task, TaskStatus
from repro.tasks.workload import Workload

POLICIES = ["FCFS", "MECT", "MM", "MSD", "FELARE"]


@st.composite
def failing_scenario(draw):
    n_types = draw(st.integers(min_value=1, max_value=2))
    n_machines = draw(st.integers(min_value=1, max_value=3))
    eet = generate_eet_cvb(
        n_types, n_machines, mean_task=4.0, v_task=0.4, v_machine=0.4,
        seed=draw(st.integers(0, 5_000)),
    )
    n_tasks = draw(st.integers(min_value=1, max_value=15))
    specs = [
        (
            i,
            draw(st.integers(0, n_types - 1)),
            draw(st.floats(min_value=0.0, max_value=30.0, allow_nan=False)),
            draw(st.floats(min_value=1.0, max_value=50.0, allow_nan=False)),
        )
        for i in range(n_tasks)
    ]
    mtbf = draw(st.floats(min_value=2.0, max_value=50.0, allow_nan=False))
    mttr = draw(st.floats(min_value=0.5, max_value=10.0, allow_nan=False))
    policy = draw(st.sampled_from(POLICIES))
    seed = draw(st.integers(0, 5_000))
    return eet, specs, mtbf, mttr, policy, seed


def run(eet, specs, mtbf, mttr, policy, seed):
    tasks = [
        Task(
            id=i,
            task_type=eet.task_types[ti],
            arrival_time=arr,
            deadline=arr + slack,
        )
        for i, ti, arr, slack in specs
    ]
    workload = Workload(task_types=eet.task_types, tasks=tasks)
    scheduler = create_scheduler(policy)
    capacity = 2 if scheduler.mode is SchedulingMode.BATCH else float("inf")
    sim = Simulator(
        cluster=Cluster.build(eet, {n: 1 for n in eet.machine_type_names}),
        workload=workload,
        scheduler=scheduler,
        queue_capacity=capacity,
        failure_model=FailureModel(mtbf=mtbf, mttr=mttr),
        seed=seed,
    )
    return sim.run(), workload, sim


@given(failing_scenario())
@settings(max_examples=60, deadline=None)
def test_conservation_under_failures(scenario):
    result, workload, _ = run(*scenario)
    s = result.summary
    assert s.completed + s.cancelled + s.missed == s.total_tasks == len(workload)
    assert all(t.status.is_terminal for t in workload)


@given(failing_scenario())
@settings(max_examples=40, deadline=None)
def test_completed_still_on_time(scenario):
    result, workload, _ = run(*scenario)
    for t in workload:
        if t.status is TaskStatus.COMPLETED:
            assert t.completion_time <= t.deadline


@given(failing_scenario())
@settings(max_examples=40, deadline=None)
def test_wall_time_partition_includes_downtime(scenario):
    """idle + busy + off == simulated wall time, per machine."""
    result, _, sim = run(*scenario)
    for m in sim.cluster:
        total = m.energy.idle_time + m.energy.busy_time + m.energy.off_time
        assert abs(total - sim.now) < 1e-6 or sim.now == 0.0


@given(failing_scenario())
@settings(max_examples=30, deadline=None)
def test_deterministic_under_failures(scenario):
    a, _, _ = run(*scenario)
    b, _, _ = run(*scenario)
    assert a.task_records == b.task_records


@given(failing_scenario())
@settings(max_examples=30, deadline=None)
def test_simulation_terminates(scenario):
    result, workload, _ = run(*scenario)
    # The failure process stops renewing once all tasks are terminal, so the
    # event count stays within a sane multiple of the workload size.
    assert result.events_processed < 10_000
