"""Property-based tests: trace ingestion and extras-preserving round-trips.

Two families of invariants back the trace layer:

* **Workload-CSV fixpoint** — for any workload, ``write → read → write``
  reproduces the first CSV byte-for-byte: column order, ``%.9g`` float
  formatting and extra (annotation) columns are all canonical after one
  write, so re-serialising is the identity.
* **Down-sampling determinism** — :class:`~repro.tasks.trace_io.TraceSpec`
  sampling is a pure function of ``(seed, replication)``: the same pair
  always keeps the same rows, and every kept row comes from the source
  trace with its relative order intact.
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.eet_generation import generate_eet_cvb
from repro.tasks.task import Task
from repro.tasks.task_type import TaskType
from repro.tasks.trace_io import (
    TraceSpec,
    read_workload_csv,
    write_workload_csv,
)
from repro.tasks.workload import Workload

seeds = st.integers(min_value=0, max_value=2**32 - 1)

_extra_names = st.lists(
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_"
        ),
        min_size=1,
        max_size=8,
    ).filter(
        lambda s: s not in ("task_id", "task_type", "arrival_time", "deadline")
    ),
    max_size=3,
    unique=True,
)
_extra_values = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_-. "
    ),
    max_size=10,
).map(str.strip)


@st.composite
def workloads(draw):
    """A small workload with annotation columns shared across its tasks."""
    types = [
        TaskType("T1", 0, relative_deadline=5.0),
        TaskType("T2", 1, relative_deadline=9.0),
    ]
    names = draw(_extra_names)
    n = draw(st.integers(min_value=1, max_value=12))
    tasks = []
    clock = 0.0
    for i in range(n):
        clock += draw(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
        )
        task_type = types[draw(st.integers(0, 1))]
        extras = tuple((name, draw(_extra_values)) for name in names)
        tasks.append(
            Task(
                id=i,
                task_type=task_type,
                arrival_time=clock,
                deadline=clock + task_type.relative_deadline,
                extras=extras,
            )
        )
    return Workload(task_types=types, tasks=tasks)


@given(workloads())
@settings(max_examples=50, deadline=None)
def test_write_read_write_is_a_fixpoint(workload):
    first = write_workload_csv(workload)
    again = write_workload_csv(read_workload_csv(io.StringIO(first)))
    assert again == first


@given(workloads())
@settings(max_examples=30, deadline=None)
def test_round_trip_preserves_extras_exactly(workload):
    again = read_workload_csv(io.StringIO(write_workload_csv(workload)))
    assert [t.extras for t in again] == [t.extras for t in workload]
    assert [t.task_type.name for t in again] == [
        t.task_type.name for t in workload
    ]


@pytest.fixture(scope="module")
def sample_spec(tmp_path_factory):
    """A 40-row trace on disk shared by the sampling properties.

    Module-scoped on purpose: Hypothesis re-runs the test body per example
    and rejects function-scoped fixtures.
    """
    path = tmp_path_factory.mktemp("trace") / "trace.csv"
    rows = ["job,when"] + [f"job{i},{i * 3}" for i in range(40)]
    path.write_text("\n".join(rows) + "\n", encoding="utf-8")
    return TraceSpec(
        path=str(path),
        columns={"task_id": "job", "arrival_time": "when"},
        default_relative_deadline=10.0,
        bin_column="when",
        sample=0.5,
    )


@given(seeds, st.integers(min_value=0, max_value=5))
@settings(max_examples=25, deadline=None)
def test_down_sampling_deterministic_under_seed(sample_spec, seed, replication):
    eet = generate_eet_cvb(3, 2, seed=2)
    spec = sample_spec
    first = spec.build_workload(eet, seed=seed, replication=replication)
    again = spec.build_workload(eet, seed=seed, replication=replication)
    kept = [t.extras[0][1] for t in first]
    assert kept == [t.extras[0][1] for t in again]
    # Kept rows are a subsequence of the source: order intact, ids dense.
    source = [f"job{i}" for i in range(40)]
    assert kept == [name for name in source if name in set(kept)]
    assert [t.id for t in first] == list(range(len(first)))


@given(seeds)
@settings(max_examples=15, deadline=None)
def test_replications_sample_independently(sample_spec, seed):
    eet = generate_eet_cvb(3, 2, seed=2)
    spec = sample_spec
    picks = {
        tuple(
            t.extras[0][1]
            for t in spec.build_workload(eet, seed=seed, replication=r)
        )
        for r in range(4)
    }
    # Four replications of a 0.5-sample over 40 rows colliding entirely
    # would mean the replication label is ignored.
    assert len(picks) > 1
