"""Property-based tests: EET generation invariants and CSV round-trips."""

import io

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.eet import EETMatrix
from repro.machines.eet_generation import (
    generate_eet_cvb,
    generate_eet_range_based,
)

dims = st.tuples(
    st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8)
)
seeds = st.integers(min_value=0, max_value=2**32 - 1)
consistencies = st.sampled_from(
    ["inconsistent", "consistent", "partially_consistent"]
)


@given(dims, seeds, consistencies)
@settings(max_examples=50, deadline=None)
def test_range_based_invariants(dim, seed, consistency):
    n_tasks, n_machines = dim
    m = generate_eet_range_based(
        n_tasks, n_machines, consistency=consistency, seed=seed
    )
    assert m.values.shape == (n_tasks, n_machines)
    assert (m.values > 0).all()
    assert np.isfinite(m.values).all()


@given(dims, seeds, consistencies)
@settings(max_examples=50, deadline=None)
def test_cvb_invariants(dim, seed, consistency):
    n_tasks, n_machines = dim
    m = generate_eet_cvb(
        n_tasks, n_machines, consistency=consistency, seed=seed
    )
    assert m.values.shape == (n_tasks, n_machines)
    assert (m.values > 0).all()


@given(dims, seeds)
@settings(max_examples=50, deadline=None)
def test_consistent_really_is_consistent(dim, seed):
    n_tasks, n_machines = dim
    m = generate_eet_cvb(
        n_tasks, n_machines, consistency="consistent", seed=seed
    )
    assert m.is_consistent()


@given(dims, seeds)
@settings(max_examples=30, deadline=None)
def test_zero_machine_cov_homogeneous(dim, seed):
    n_tasks, n_machines = dim
    m = generate_eet_cvb(n_tasks, n_machines, v_machine=0.0, seed=seed)
    assert m.is_homogeneous()


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
    st.data(),
)
@settings(max_examples=50, deadline=None)
def test_csv_round_trip(n_tasks, n_machines, data):
    values = np.array(
        [
            [
                data.draw(
                    st.floats(
                        min_value=0.001,
                        max_value=1e6,
                        allow_nan=False,
                        allow_infinity=False,
                    )
                )
                for _ in range(n_machines)
            ]
            for _ in range(n_tasks)
        ]
    )
    m = EETMatrix(
        values,
        [f"T{i}" for i in range(n_tasks)],
        [f"M{j}" for j in range(n_machines)],
    )
    again = EETMatrix.read_csv(io.StringIO(m.to_csv()))
    assert again.task_type_names == m.task_type_names
    assert again.machine_type_names == m.machine_type_names
    np.testing.assert_allclose(again.values, m.values, rtol=1e-8)


@given(seeds)
@settings(max_examples=20, deadline=None)
def test_generation_deterministic(seed):
    assert generate_eet_cvb(3, 4, seed=seed) == generate_eet_cvb(3, 4, seed=seed)
