"""Property: the canonical hash keys semantics, not syntax.

The result cache is only sound if two spellings of the same simulation get
the same key (else the cache silently misses) and two *different*
simulations never share one (else the cache serves wrong results). These
properties pin both directions:

* surface syntax — key order, elided default fields, ``2`` vs ``2.0``,
  scheduler-name aliasing, cosmetic names — never perturbs the digest;
* any semantic field perturbation (seed, duration, machine counts, EET
  values, policy list) always does.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import CampaignSpec
from repro.scenarios import build_scenario
from repro.service import (
    campaign_hash,
    canonical_dumps,
    canonical_hash,
    request_key,
    scenario_hash,
)

# -- generic canonical-JSON properties -------------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=20,
)


def _shuffle_keys(value, rng):
    """Deep copy with every dict's key order randomised."""
    if isinstance(value, dict):
        items = list(value.items())
        rng.shuffle(items)
        return {k: _shuffle_keys(v, rng) for k, v in items}
    if isinstance(value, list):
        return [_shuffle_keys(v, rng) for v in value]
    return value


@given(json_values, st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_key_order_never_perturbs_the_hash(value, rng):
    assert canonical_hash(_shuffle_keys(value, rng)) == canonical_hash(value)


@given(json_values)
@settings(max_examples=100, deadline=None)
def test_int_float_equal_values_hash_identically(value):
    def floatify(v):
        if isinstance(v, bool):
            return v
        if isinstance(v, int) and abs(v) < 2**52:
            return float(v)
        if isinstance(v, dict):
            return {k: floatify(x) for k, x in v.items()}
        if isinstance(v, list):
            return [floatify(x) for x in v]
        return v

    assert canonical_hash(floatify(value)) == canonical_hash(value)


@given(json_values)
@settings(max_examples=100, deadline=None)
def test_canonical_dumps_is_a_fixpoint(value):
    once = canonical_dumps(value)
    assert canonical_dumps(json.loads(once)) == once


# -- scenario-level properties ---------------------------------------------------

durations = st.sampled_from([30.0, 60.0, 120.0])
seeds = st.integers(min_value=0, max_value=2**31 - 1)
intensities = st.sampled_from(["low", "high"])


@given(durations, seeds, intensities)
@settings(max_examples=25, deadline=None)
def test_preset_ref_matches_expanded_scenario(duration, seed, intensity):
    overrides = {"duration": duration, "seed": seed, "intensity": intensity}
    _, _, ref_key = request_key(
        {"preset": "classroom_homogeneous", "overrides": overrides}
    )
    expanded = build_scenario("classroom_homogeneous", **overrides).to_dict()
    _, _, exp_key = request_key(expanded)
    assert ref_key == exp_key


@given(durations, seeds)
@settings(max_examples=25, deadline=None)
def test_scenario_name_is_cosmetic_but_seed_is_not(duration, seed):
    base = build_scenario(
        "classroom_homogeneous", duration=duration, seed=seed
    ).to_dict()
    renamed = dict(base, name=f"{base['name']}-copy")
    assert scenario_hash(renamed) == scenario_hash(base)
    reseeded = dict(base, seed=seed + 1)
    assert scenario_hash(reseeded) != scenario_hash(base)
    stretched = json.loads(json.dumps(base))
    stretched["generator"]["duration"] = duration + 1.0
    assert scenario_hash(stretched) != scenario_hash(base)


@given(durations, seeds)
@settings(max_examples=10, deadline=None)
def test_machine_and_eet_perturbations_change_the_hash(duration, seed):
    base = build_scenario(
        "classroom_homogeneous", duration=duration, seed=seed
    ).to_dict()
    fewer = json.loads(json.dumps(base))
    name, count = next(iter(fewer["machine_counts"].items()))
    fewer["machine_counts"][name] = count + 1
    assert scenario_hash(fewer) != scenario_hash(base)

    slower = json.loads(json.dumps(base))
    slower["eet"]["values"][0][0] += 1.0
    assert scenario_hash(slower) != scenario_hash(base)


# -- campaign-level properties ---------------------------------------------------

campaign_seed_lists = st.lists(
    st.integers(min_value=0, max_value=1000), min_size=1, max_size=3,
    unique=True,
)


@given(campaign_seed_lists, seeds)
@settings(max_examples=25, deadline=None)
def test_campaign_default_elision_and_aliases(seed_list, master):
    minimal = {
        "scenarios": ["classroom_homogeneous"],
        "schedulers": ["fcfs", "mect"],
        "seeds": seed_list,
        "seed": master,
    }
    shouty = {
        "seed": master,
        "seeds": list(seed_list),
        "schedulers": ["FCFS", "MECT"],
        "scenarios": [{"name": "classroom_homogeneous"}],
        "name": "renamed-campaign",
        "metrics": ["completion_rate"],
    }
    normalised = CampaignSpec.from_dict(minimal).to_dict()
    assert campaign_hash(minimal) == campaign_hash(normalised)
    assert campaign_hash(shouty) == campaign_hash(minimal)

    reordered = dict(minimal, schedulers=["mect", "fcfs"])
    assert campaign_hash(reordered) != campaign_hash(minimal)
    reseeded = dict(minimal, seed=master + 1)
    assert campaign_hash(reseeded) != campaign_hash(minimal)


@given(campaign_seed_lists)
@settings(max_examples=25, deadline=None)
def test_campaign_int_float_seed_spellings_match(seed_list):
    base = {
        "scenarios": ["classroom_homogeneous"],
        "schedulers": ["FCFS"],
        "seeds": seed_list,
    }
    floated = dict(base, seeds=[float(s) for s in seed_list])
    assert campaign_hash(floated) == campaign_hash(base)
