"""Property-based tests of the simulation engine's global invariants.

The big one is the conservation law: under *any* workload, machine
population, and policy, every task ends in exactly one of
COMPLETED / CANCELLED / MISSED, and derived metrics stay within bounds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simulator import Simulator
from repro.machines.cluster import Cluster
from repro.machines.eet_generation import generate_eet_cvb
from repro.scheduling.base import SchedulingMode
from repro.scheduling.registry import create_scheduler
from repro.tasks.task import Task, TaskStatus
from repro.tasks.workload import Workload

POLICIES = [
    "FCFS", "MECT", "MEET", "OLB", "RR", "RANDOM", "KPB", "SA",
    "MM", "MAXMIN", "SUFFERAGE", "MMU", "MSD", "ELARE", "FELARE",
]


@st.composite
def random_scenario(draw):
    n_types = draw(st.integers(min_value=1, max_value=3))
    n_machines = draw(st.integers(min_value=1, max_value=4))
    eet_seed = draw(st.integers(min_value=0, max_value=10_000))
    eet = generate_eet_cvb(
        n_types, n_machines, mean_task=5.0, v_task=0.5, v_machine=0.5,
        seed=eet_seed,
    )
    n_tasks = draw(st.integers(min_value=0, max_value=25))
    tasks = []
    for i in range(n_tasks):
        arrival = draw(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
        )
        slack = draw(
            st.floats(min_value=0.1, max_value=40.0, allow_nan=False)
        )
        tasks.append((i, draw(st.integers(0, n_types - 1)), arrival, slack))
    policy = draw(st.sampled_from(POLICIES))
    capacity = draw(st.sampled_from([1, 2, 5, float("inf")]))
    sim_seed = draw(st.integers(min_value=0, max_value=10_000))
    return eet, tasks, policy, capacity, sim_seed


def build_and_run(eet, task_specs, policy, capacity, sim_seed):
    task_types = eet.task_types
    tasks = [
        Task(
            id=i,
            task_type=task_types[ti],
            arrival_time=arr,
            deadline=arr + slack,
        )
        for i, ti, arr, slack in task_specs
    ]
    workload = Workload(task_types=task_types, tasks=tasks)
    cluster = Cluster.build(
        eet, {n: 1 for n in eet.machine_type_names}
    )
    scheduler = create_scheduler(policy)
    if scheduler.mode is SchedulingMode.IMMEDIATE:
        capacity = float("inf")
    sim = Simulator(
        cluster=cluster,
        workload=workload,
        scheduler=scheduler,
        queue_capacity=capacity,
        seed=sim_seed,
    )
    return sim.run(), workload, sim


@given(random_scenario())
@settings(max_examples=80, deadline=None)
def test_conservation_law(scenario):
    result, workload, _ = build_and_run(*scenario)
    s = result.summary
    assert s.completed + s.cancelled + s.missed == s.total_tasks == len(workload)
    assert all(t.status.is_terminal for t in workload)


@given(random_scenario())
@settings(max_examples=80, deadline=None)
def test_completed_tasks_are_on_time(scenario):
    """Drop-on-deadline mode: a completed task always met its deadline."""
    result, workload, _ = build_and_run(*scenario)
    for t in workload:
        if t.status is TaskStatus.COMPLETED:
            assert t.completion_time <= t.deadline
            assert t.on_time


@given(random_scenario())
@settings(max_examples=60, deadline=None)
def test_metric_bounds(scenario):
    result, _, _ = build_and_run(*scenario)
    s = result.summary
    assert 0.0 <= s.completion_rate <= 1.0
    assert 0.0 <= s.cancellation_rate <= 1.0
    assert 0.0 <= s.miss_rate <= 1.0
    rate_sum = s.completion_rate + s.cancellation_rate + s.miss_rate
    assert abs(rate_sum - (1.0 if s.total_tasks else 0.0)) < 1e-9
    assert s.makespan >= 0.0
    assert s.total_energy >= 0.0
    assert 0.0 <= s.mean_utilization <= 1.0
    assert 0.0 < s.fairness_index <= 1.0 or s.total_tasks == 0


@given(random_scenario())
@settings(max_examples=60, deadline=None)
def test_causality_of_task_timestamps(scenario):
    result, workload, _ = build_and_run(*scenario)
    for t in workload:
        if t.assigned_time is not None:
            assert t.assigned_time >= t.arrival_time
        if t.start_time is not None:
            assert t.start_time >= t.assigned_time
        if t.completion_time is not None:
            assert t.completion_time >= t.start_time
        if t.missed_time is not None:
            # a miss can only happen at the deadline instant
            assert t.missed_time == t.deadline


@given(random_scenario())
@settings(max_examples=40, deadline=None)
def test_machine_counters_match_task_outcomes(scenario):
    result, workload, sim = build_and_run(*scenario)
    completed = sum(m.completed_count for m in sim.cluster)
    assert completed == result.summary.completed
    # MISSED tasks that had a machine are exactly the machines' missed counts
    missed_on_machines = sum(
        1 for t in workload if t.status is TaskStatus.MISSED
    )
    assert sum(m.missed_count for m in sim.cluster) == missed_on_machines


@given(random_scenario())
@settings(max_examples=40, deadline=None)
def test_seed_determinism(scenario):
    result_a, workload_a, _ = build_and_run(*scenario)
    result_b, workload_b, _ = build_and_run(*scenario)
    assert result_a.task_records == result_b.task_records
    assert result_a.summary.as_dict() == result_b.summary.as_dict()


@given(random_scenario())
@settings(max_examples=30, deadline=None)
def test_energy_conservation(scenario):
    """Per-machine idle + busy time equals metered wall time."""
    result, _, sim = build_and_run(*scenario)
    for m in sim.cluster:
        total = m.energy.idle_time + m.energy.busy_time
        assert abs(total - sim.now) < 1e-6 or sim.now == 0.0
