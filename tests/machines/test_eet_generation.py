"""Synthetic EET generation: ranges, CoVs, consistency classes."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.machines.eet_generation import (
    generate_eet_cvb,
    generate_eet_range_based,
    make_consistency,
)


class TestRangeBased:
    def test_shape_and_names(self):
        m = generate_eet_range_based(3, 4, seed=0)
        assert m.n_task_types == 3
        assert m.n_machine_types == 4
        assert m.task_type_names == ["T1", "T2", "T3"]

    def test_entries_within_bounds(self):
        m = generate_eet_range_based(
            5, 5, task_range=10.0, machine_range=3.0, seed=1
        )
        assert m.values.min() >= 1.0
        assert m.values.max() <= 30.0

    def test_deterministic(self):
        a = generate_eet_range_based(3, 3, seed=7)
        b = generate_eet_range_based(3, 3, seed=7)
        assert a == b

    def test_custom_names(self):
        m = generate_eet_range_based(
            1, 2, seed=0,
            task_type_names=["detect"],
            machine_type_names=["CPU", "GPU"],
        )
        assert m.task_type_names == ["detect"]
        assert m.machine_type_names == ["CPU", "GPU"]

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_eet_range_based(0, 3)

    def test_bad_ranges_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_eet_range_based(2, 2, task_range=0.5)

    def test_name_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_eet_range_based(2, 2, task_type_names=["one"])


class TestCVB:
    def test_shape(self):
        m = generate_eet_cvb(4, 6, seed=0)
        assert m.values.shape == (4, 6)

    def test_positive(self):
        m = generate_eet_cvb(5, 5, seed=3)
        assert (m.values > 0).all()

    def test_zero_machine_cov_is_homogeneous(self):
        m = generate_eet_cvb(3, 4, v_machine=0.0, seed=5)
        assert m.is_homogeneous()

    def test_mean_tracks_mean_task(self):
        m = generate_eet_cvb(
            60, 60, mean_task=50.0, v_task=0.3, v_machine=0.3, seed=9
        )
        assert m.values.mean() == pytest.approx(50.0, rel=0.2)

    def test_machine_cov_tracks_parameter(self):
        m = generate_eet_cvb(
            200, 30, mean_task=30.0, v_task=0.2, v_machine=0.6, seed=11
        )
        _, machine_cov = m.heterogeneity_cov()
        assert machine_cov == pytest.approx(0.6, rel=0.2)

    def test_deterministic(self):
        assert generate_eet_cvb(3, 3, seed=2) == generate_eet_cvb(3, 3, seed=2)

    def test_negative_cov_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_eet_cvb(2, 2, v_task=-0.1)

    def test_nonpositive_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_eet_cvb(2, 2, mean_task=0.0)


class TestConsistency:
    def test_consistent_sorts_every_row(self):
        m = generate_eet_cvb(6, 5, consistency="consistent", seed=4)
        assert m.is_consistent()
        values = m.values
        assert (np.diff(values, axis=1) >= 0).all()

    def test_inconsistent_usually_not_consistent(self):
        m = generate_eet_cvb(8, 6, consistency="inconsistent", seed=4)
        assert not m.is_consistent()

    def test_partially_consistent_subset_sorted(self):
        rng = np.random.default_rng(0)
        raw = rng.uniform(1.0, 10.0, size=(6, 6))
        out = make_consistency(raw, "partially_consistent", np.random.default_rng(1))
        # at least one column pair among the chosen half is ordered in all rows
        ordered_pairs = 0
        for i in range(6):
            for j in range(i + 1, 6):
                if (out[:, i] <= out[:, j]).all() or (
                    out[:, i] >= out[:, j]
                ).all():
                    ordered_pairs += 1
        assert ordered_pairs >= 1

    def test_consistency_preserves_multiset_per_row(self):
        rng = np.random.default_rng(0)
        raw = rng.uniform(1.0, 10.0, size=(4, 5))
        out = make_consistency(raw, "consistent", np.random.default_rng(1))
        for i in range(4):
            np.testing.assert_allclose(np.sort(out[i]), np.sort(raw[i]))

    def test_unknown_consistency_rejected(self):
        with pytest.raises(ConfigurationError):
            make_consistency(
                np.ones((2, 2)), "mostly", np.random.default_rng(0)  # type: ignore[arg-type]
            )

    def test_inconsistent_passthrough_copies(self):
        raw = np.ones((2, 2))
        out = make_consistency(raw, "inconsistent", np.random.default_rng(0))
        out[0, 0] = 9.0
        assert raw[0, 0] == 1.0
