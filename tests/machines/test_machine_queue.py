"""Bounded machine queues."""

import pytest

from repro.core.errors import ConfigurationError, SimulationStateError
from repro.machines.machine_queue import UNBOUNDED, MachineQueue
from repro.tasks.task import Task
from repro.tasks.task_type import TaskType

T = TaskType("T", 0)


def task(i: int) -> Task:
    return Task(id=i, task_type=T, arrival_time=0.0, deadline=100.0)


class TestCapacity:
    def test_unbounded_default(self):
        q = MachineQueue()
        assert not q.is_bounded
        assert q.free_slots == UNBOUNDED
        assert not q.is_full

    def test_bounded(self):
        q = MachineQueue(2)
        assert q.is_bounded
        assert q.free_slots == 2

    def test_zero_capacity_always_full(self):
        q = MachineQueue(0)
        assert q.is_full

    def test_fractional_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineQueue(1.5)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineQueue(-1)


class TestFIFO:
    def test_push_pop_order(self):
        q = MachineQueue()
        for i in range(3):
            q.push(task(i))
        assert [q.pop().id for _ in range(3)] == [0, 1, 2]

    def test_push_full_raises(self):
        q = MachineQueue(1)
        q.push(task(0))
        with pytest.raises(SimulationStateError):
            q.push(task(1))

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationStateError):
            MachineQueue().pop()

    def test_peek(self):
        q = MachineQueue()
        assert q.peek() is None
        t = task(0)
        q.push(t)
        assert q.peek() is t
        assert len(q) == 1

    def test_contains(self):
        q = MachineQueue()
        t = task(0)
        q.push(t)
        assert t in q
        assert task(1) not in q

    def test_free_slots_shrink(self):
        q = MachineQueue(3)
        q.push(task(0))
        assert q.free_slots == 2


class TestRemoval:
    def test_remove_specific(self):
        q = MachineQueue()
        tasks = [task(i) for i in range(3)]
        for t in tasks:
            q.push(t)
        assert q.remove(tasks[1])
        assert [q.pop().id for _ in range(2)] == [0, 2]

    def test_remove_absent_returns_false(self):
        q = MachineQueue()
        assert not q.remove(task(0))

    def test_clear_returns_in_order(self):
        q = MachineQueue()
        for i in range(3):
            q.push(task(i))
        evicted = q.clear()
        assert [t.id for t in evicted] == [0, 1, 2]
        assert len(q) == 0
