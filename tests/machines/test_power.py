"""Power profiles and energy metering."""

import pytest

from repro.core.errors import ConfigurationError
from repro.machines.power import EnergyMeter, PowerProfile


class TestPowerProfile:
    def test_defaults_zero(self):
        p = PowerProfile()
        assert p.idle_watts == 0.0
        assert p.active_watts() == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerProfile(idle_watts=-1.0)
        with pytest.raises(ConfigurationError):
            PowerProfile(busy_watts=-1.0)
        with pytest.raises(ConfigurationError):
            PowerProfile(busy_watts_by_type={"T1": -2.0})

    def test_per_type_override(self):
        p = PowerProfile(busy_watts=100.0, busy_watts_by_type={"fast": 40.0})
        assert p.active_watts("fast") == 40.0
        assert p.active_watts("other") == 100.0
        assert p.active_watts() == 100.0

    def test_energy_for(self):
        p = PowerProfile(busy_watts=50.0)
        assert p.energy_for("T1", 4.0) == 200.0

    def test_energy_for_negative_runtime_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerProfile().energy_for("T1", -1.0)


class TestEnergyMeter:
    def test_idle_integration(self):
        meter = EnergyMeter(PowerProfile(idle_watts=10.0, busy_watts=100.0))
        meter.advance(5.0, busy=False)
        assert meter.idle_energy == 50.0
        assert meter.busy_energy == 0.0
        assert meter.idle_time == 5.0

    def test_busy_integration(self):
        meter = EnergyMeter(PowerProfile(idle_watts=10.0, busy_watts=100.0))
        meter.advance(2.0, busy=False)
        meter.advance(5.0, busy=True)
        assert meter.idle_energy == 20.0
        assert meter.busy_energy == 300.0
        assert meter.total_energy == 320.0

    def test_per_type_watts_used(self):
        profile = PowerProfile(
            busy_watts=100.0, busy_watts_by_type={"cheap": 10.0}
        )
        meter = EnergyMeter(profile)
        meter.advance(1.0, busy=True, task_type_name="cheap")
        assert meter.busy_energy == 10.0

    def test_backwards_time_rejected(self):
        meter = EnergyMeter(PowerProfile())
        meter.advance(5.0, busy=False)
        with pytest.raises(ConfigurationError):
            meter.advance(4.0, busy=False)

    def test_zero_length_interval_is_noop(self):
        meter = EnergyMeter(PowerProfile(idle_watts=10.0))
        meter.advance(3.0, busy=False)
        meter.advance(3.0, busy=True)
        assert meter.busy_time == 0.0

    def test_utilization(self):
        meter = EnergyMeter(PowerProfile())
        meter.advance(4.0, busy=True)
        meter.advance(8.0, busy=False)
        assert meter.utilization() == pytest.approx(0.5)

    def test_utilization_empty(self):
        assert EnergyMeter(PowerProfile()).utilization() == 0.0

    def test_reset(self):
        meter = EnergyMeter(PowerProfile(idle_watts=1.0), start_time=0.0)
        meter.advance(10.0, busy=False)
        meter.reset(start_time=2.0)
        assert meter.total_energy == 0.0
        assert meter.last_time == 2.0

    def test_custom_start_time(self):
        meter = EnergyMeter(PowerProfile(idle_watts=10.0), start_time=5.0)
        meter.advance(6.0, busy=False)
        assert meter.idle_energy == 10.0
