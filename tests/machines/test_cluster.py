"""Cluster construction and vectorised planning views."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.machines.cluster import Cluster
from repro.machines.power import PowerProfile
from repro.tasks.task import Task


def t1_task(task_types, i=0):
    task = Task(id=i, task_type=task_types[0], arrival_time=0.0, deadline=99.0)
    task.enqueue_batch()
    return task


class TestBuild:
    def test_counts_mapping(self, eet_3x2):
        cluster = Cluster.build(eet_3x2, {"M1": 2, "M2": 1})
        assert len(cluster) == 3
        assert cluster.counts_by_type() == {"M1": 2, "M2": 1}

    def test_counts_sequence(self, eet_3x2):
        cluster = Cluster.build(eet_3x2, [1, 2])
        assert cluster.counts_by_type() == {"M1": 1, "M2": 2}

    def test_machine_ids_sequential(self, eet_3x2):
        cluster = Cluster.build(eet_3x2, {"M1": 2, "M2": 2})
        assert [m.id for m in cluster] == [0, 1, 2, 3]

    def test_machine_names(self, eet_3x2):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        assert [m.name for m in cluster] == ["M1-0", "M2-1"]

    def test_unknown_type_rejected(self, eet_3x2):
        with pytest.raises(ConfigurationError):
            Cluster.build(eet_3x2, {"MX": 1})

    def test_zero_machines_rejected(self, eet_3x2):
        with pytest.raises(ConfigurationError):
            Cluster.build(eet_3x2, {"M1": 0, "M2": 0})

    def test_negative_count_rejected(self, eet_3x2):
        with pytest.raises(ConfigurationError):
            Cluster.build(eet_3x2, {"M1": -1, "M2": 1})

    def test_sequence_length_mismatch_rejected(self, eet_3x2):
        with pytest.raises(ConfigurationError):
            Cluster.build(eet_3x2, [1])

    def test_power_profiles_attached(self, eet_3x2):
        cluster = Cluster.build(
            eet_3x2,
            {"M1": 1, "M2": 1},
            power_profiles={"M1": PowerProfile(idle_watts=7.0)},
        )
        assert cluster[0].machine_type.power.idle_watts == 7.0
        assert cluster[1].machine_type.power.idle_watts == 0.0

    def test_extension_parameters_attached(self, eet_3x2):
        cluster = Cluster.build(
            eet_3x2,
            {"M1": 1, "M2": 1},
            memory_capacities={"M1": 512.0},
            network={"M2": (0.1, 50.0)},
        )
        assert cluster[0].machine_type.memory_capacity == 512.0
        assert cluster[1].machine_type.network_latency == 0.1
        assert cluster[1].machine_type.network_bandwidth == 50.0


class TestVectorViews:
    def test_eet_vector_alignment(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 2, "M2": 1})
        vec = cluster.eet_vector(t1_task(task_types))
        np.testing.assert_array_equal(vec, [4.0, 4.0, 10.0])

    def test_ready_times_all_idle(self, eet_3x2):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        np.testing.assert_array_equal(cluster.ready_times(3.0), [3.0, 3.0])

    def test_completion_times(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        completion = cluster.completion_times(t1_task(task_types), 2.0)
        np.testing.assert_array_equal(completion, [6.0, 12.0])

    def test_acceptance_mask(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1}, queue_capacity=1)
        assert cluster.acceptance_mask().all()
        cluster[0].enqueue(t1_task(task_types, 0), 0.0)
        mask = cluster.acceptance_mask()
        assert not mask[0] and mask[1]


class TestUtilities:
    def test_set_queue_capacity(self, eet_3x2):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        cluster.set_queue_capacity(2)
        assert all(m.queue.capacity == 2 for m in cluster)

    def test_set_queue_capacity_with_inflight_rejected(
        self, eet_3x2, task_types
    ):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        cluster[0].enqueue(t1_task(task_types), 0.0)
        with pytest.raises(ConfigurationError):
            cluster.set_queue_capacity(2)

    def test_total_energy_starts_zero(self, powered_cluster):
        assert powered_cluster.total_energy() == 0.0

    def test_fresh_copy_pristine(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        cluster[0].enqueue(t1_task(task_types), 0.0)
        cluster[0].start_next(0.0)
        clone = cluster.fresh_copy()
        assert clone[0].is_idle
        assert len(clone[0].queue) == 0
        assert clone[0].name == cluster[0].name


class TestIdleIndex:
    def test_all_idle_initially(self, eet_3x2):
        cluster = Cluster.build(eet_3x2, {"M1": 2, "M2": 1})
        assert cluster.n_idle == 3
        assert [m.id for m in cluster.idle_machines()] == [0, 1, 2]

    def test_start_and_finish_update_index(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        machine = cluster[0]
        task = t1_task(task_types)
        machine.enqueue(task, 0.0)
        assert cluster.n_idle == 2  # queued, not yet running
        machine.start_next(0.0)
        assert cluster.n_idle == 1
        assert [m.id for m in cluster.idle_machines()] == [1]
        machine.finish_running(4.0)
        assert cluster.n_idle == 2

    def test_failure_removes_from_idle_index(self, eet_3x2):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        cluster[0].fail(1.0)
        assert cluster.n_idle == 1
        assert cluster.state.n_down == 1
        cluster[0].repair(2.0)
        assert cluster.n_idle == 2
        assert cluster.state.n_down == 0

    def test_ready_times_reflect_failures(self, eet_3x2):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        cluster[0].fail(1.0)
        ready = cluster.ready_times(1.0)
        assert ready[0] == np.inf and ready[1] == 1.0


class TestEETCacheImmutability:
    def test_eet_vector_view_is_read_only(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        vec = cluster.eet_vector(t1_task(task_types))
        with pytest.raises(ValueError):
            vec += 1.0
