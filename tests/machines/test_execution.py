"""Execution-time models: determinism, unit means, spec round-trips."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.machines.execution import (
    DeterministicExecution,
    GammaExecution,
    LognormalExecution,
    execution_model_from_spec,
)
from repro.tasks.task import Task
from repro.tasks.task_type import TaskType

TASK = Task(id=0, task_type=TaskType("T", 0), arrival_time=0.0, deadline=9.0)


class TestDeterministic:
    def test_returns_eet(self):
        model = DeterministicExecution()
        rng = np.random.default_rng(0)
        assert model.sample(TASK, 7.0, rng) == 7.0


class TestLognormal:
    def test_positive(self):
        model = LognormalExecution(sigma=0.5)
        rng = np.random.default_rng(1)
        assert all(model.sample(TASK, 5.0, rng) > 0 for _ in range(100))

    def test_unit_mean_multiplier(self):
        model = LognormalExecution(sigma=0.4)
        rng = np.random.default_rng(2)
        samples = [model.sample(TASK, 10.0, rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(10.0, rel=0.03)

    def test_zero_sigma_degenerates(self):
        model = LognormalExecution(sigma=0.0)
        rng = np.random.default_rng(3)
        assert model.sample(TASK, 5.0, rng) == 5.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            LognormalExecution(sigma=-0.1)


class TestGamma:
    def test_mean_tracks_eet(self):
        model = GammaExecution(cov=0.3)
        rng = np.random.default_rng(4)
        samples = [model.sample(TASK, 8.0, rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(8.0, rel=0.03)

    def test_cov_tracks_parameter(self):
        model = GammaExecution(cov=0.5)
        rng = np.random.default_rng(5)
        samples = np.array([model.sample(TASK, 8.0, rng) for _ in range(20000)])
        assert samples.std() / samples.mean() == pytest.approx(0.5, rel=0.05)

    def test_zero_cov_degenerates(self):
        model = GammaExecution(cov=0.0)
        rng = np.random.default_rng(6)
        assert model.sample(TASK, 8.0, rng) == 8.0

    def test_negative_cov_rejected(self):
        with pytest.raises(ConfigurationError):
            GammaExecution(cov=-0.5)


class TestSpecs:
    def test_none_is_deterministic(self):
        assert isinstance(
            execution_model_from_spec(None), DeterministicExecution
        )

    def test_round_trip(self):
        model = LognormalExecution(sigma=0.3)
        clone = execution_model_from_spec(model.spec())
        assert isinstance(clone, LognormalExecution)
        assert clone.sigma == 0.3

    def test_gamma_spec(self):
        model = execution_model_from_spec({"kind": "gamma", "cov": 0.2})
        assert isinstance(model, GammaExecution)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            execution_model_from_spec({"kind": "weibull"})

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigurationError):
            execution_model_from_spec({"kind": "gamma", "sigma": 0.2})
