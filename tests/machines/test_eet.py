"""EET matrix: validation, lookups, heterogeneity diagnostics, CSV I/O."""

import io

import numpy as np
import pytest

from repro.core.errors import EETError
from repro.machines.eet import EETMatrix

EET_CSV = """task_type,CPU,GPU,FPGA
T1,10.0,2.0,4.0
T2,8.0,9.0,3.0
"""


class TestConstruction:
    def test_from_strings(self):
        m = EETMatrix([[1.0, 2.0]], ["T1"], ["A", "B"])
        assert m.n_task_types == 1
        assert m.n_machine_types == 2

    def test_values_read_only(self, eet_3x2):
        with pytest.raises(ValueError):
            eet_3x2.values[0, 0] = 99.0

    def test_non_2d_rejected(self):
        with pytest.raises(EETError):
            EETMatrix(np.ones(3), ["T1", "T2", "T3"], ["A"])

    def test_nonpositive_rejected(self):
        with pytest.raises(EETError):
            EETMatrix([[1.0, 0.0]], ["T1"], ["A", "B"])

    def test_nan_rejected(self):
        with pytest.raises(EETError):
            EETMatrix([[1.0, float("nan")]], ["T1"], ["A", "B"])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EETError):
            EETMatrix([[1.0, 2.0]], ["T1", "T2"], ["A", "B"])
        with pytest.raises(EETError):
            EETMatrix([[1.0, 2.0]], ["T1"], ["A"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(EETError):
            EETMatrix([[1.0, 2.0]], ["T1"], ["A", "A"])

    def test_misindexed_task_types_rejected(self, task_types):
        shuffled = [task_types[1], task_types[0], task_types[2]]
        with pytest.raises(EETError):
            EETMatrix(np.ones((3, 2)), shuffled, ["A", "B"])


class TestAccessors:
    def test_lookup(self, eet_3x2):
        assert eet_3x2.lookup("T1", "M1") == 4.0
        assert eet_3x2.lookup("T2", "M2") == 3.0

    def test_lookup_by_task_type_object(self, eet_3x2, task_types):
        assert eet_3x2.lookup(task_types[2], "M2") == 6.0

    def test_lookup_unknown_task(self, eet_3x2):
        with pytest.raises(EETError):
            eet_3x2.lookup("TX", "M1")

    def test_lookup_unknown_machine(self, eet_3x2):
        with pytest.raises(EETError):
            eet_3x2.lookup("T1", "MX")

    def test_row_and_column(self, eet_3x2):
        np.testing.assert_array_equal(eet_3x2.row("T2"), [9.0, 3.0])
        np.testing.assert_array_equal(eet_3x2.column("M1"), [4.0, 9.0, 5.0])

    def test_has_names(self, eet_3x2):
        assert eet_3x2.has_task_type("T1")
        assert not eet_3x2.has_task_type("TX")
        assert eet_3x2.has_machine_type("M2")
        assert not eet_3x2.has_machine_type("MX")

    def test_task_type_lookup(self, eet_3x2):
        assert eet_3x2.task_type("T3").index == 2


class TestDiagnostics:
    def test_homogeneous_detection(self, eet_homogeneous, eet_3x2):
        assert eet_homogeneous.is_homogeneous()
        assert not eet_3x2.is_homogeneous()

    def test_consistency_detection(self):
        consistent = EETMatrix(
            [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]], ["T1", "T2"], ["A", "B", "C"]
        )
        inconsistent = EETMatrix(
            [[1.0, 2.0, 3.0], [6.0, 5.0, 4.0]], ["T1", "T2"], ["A", "B", "C"]
        )
        assert consistent.is_consistent()
        assert not inconsistent.is_consistent()

    def test_homogeneous_cov_zero(self, eet_homogeneous):
        _, machine_cov = eet_homogeneous.heterogeneity_cov()
        assert machine_cov == pytest.approx(0.0)


class TestHelpers:
    def test_homogeneous_builder(self):
        m = EETMatrix.homogeneous([2.0, 4.0], ["T1", "T2"], 3)
        assert m.is_homogeneous()
        assert m.n_machine_types == 3
        assert m.lookup("T2", "M1") == 4.0

    def test_equality(self, eet_3x2):
        clone = EETMatrix(
            eet_3x2.values.copy(),
            eet_3x2.task_types,
            eet_3x2.machine_type_names,
        )
        assert clone == eet_3x2

    def test_inequality(self, eet_3x2, eet_homogeneous):
        assert eet_3x2 != eet_homogeneous


class TestCSV:
    def test_read(self):
        m = EETMatrix.read_csv(io.StringIO(EET_CSV))
        assert m.machine_type_names == ["CPU", "GPU", "FPGA"]
        assert m.lookup("T2", "FPGA") == 3.0

    def test_round_trip(self):
        m = EETMatrix.read_csv(io.StringIO(EET_CSV))
        again = EETMatrix.read_csv(io.StringIO(m.to_csv()))
        assert again == m

    def test_write_to_path(self, tmp_path, eet_3x2):
        path = tmp_path / "eet.csv"
        eet_3x2.to_csv(path)
        assert EETMatrix.read_csv(path) == eet_3x2

    def test_read_from_path(self, tmp_path):
        path = tmp_path / "eet.csv"
        path.write_text(EET_CSV, encoding="utf-8")
        assert EETMatrix.read_csv(path).n_task_types == 2

    def test_empty_csv_rejected(self):
        with pytest.raises(EETError):
            EETMatrix.read_csv(io.StringIO(""))

    def test_ragged_row_rejected(self):
        bad = "task_type,A,B\nT1,1.0\n"
        with pytest.raises(EETError):
            EETMatrix.read_csv(io.StringIO(bad))

    def test_non_numeric_rejected(self):
        bad = "task_type,A\nT1,fast\n"
        with pytest.raises(EETError):
            EETMatrix.read_csv(io.StringIO(bad))
