"""Machine runtime: planning quantities, execution lifecycle, energy."""

import numpy as np
import pytest

from repro.core.errors import SimulationStateError
from repro.machines.eet import EETMatrix
from repro.machines.machine import Machine
from repro.machines.machine_type import MachineType
from repro.machines.power import PowerProfile
from repro.tasks.task import Task, TaskStatus
from repro.tasks.task_type import TaskType


@pytest.fixture
def setup():
    types = [TaskType("T1", 0), TaskType("T2", 1)]
    eet = EETMatrix(np.array([[4.0], [6.0]]), types, ["M"])
    mtype = MachineType(
        "M", 0, power=PowerProfile(idle_watts=10.0, busy_watts=100.0)
    )
    machine = Machine(0, mtype, eet)
    return types, machine


def new_task(types, i=0, type_idx=0, deadline=100.0) -> Task:
    t = Task(
        id=i, task_type=types[type_idx], arrival_time=0.0, deadline=deadline
    )
    t.enqueue_batch()
    return t


class TestPlanning:
    def test_eet_for(self, setup):
        types, machine = setup
        assert machine.eet_for(new_task(types, type_idx=1)) == 6.0

    def test_idle_ready_time_is_now(self, setup):
        types, machine = setup
        assert machine.ready_time(5.0) == 5.0

    def test_ready_time_includes_running_remainder(self, setup):
        types, machine = setup
        machine.enqueue(new_task(types, 0), now=0.0)
        machine.start_next(0.0)
        assert machine.ready_time(1.0) == 4.0  # 3 remaining at t=1 + 0 queued

    def test_ready_time_includes_queued_work(self, setup):
        types, machine = setup
        machine.enqueue(new_task(types, 0, type_idx=0), now=0.0)
        machine.start_next(0.0)
        machine.enqueue(new_task(types, 1, type_idx=1), now=0.0)
        # at t=0: 4 remaining + 6 queued
        assert machine.ready_time(0.0) == 10.0

    def test_completion_time_for(self, setup):
        types, machine = setup
        candidate = new_task(types, 5, type_idx=1)
        assert machine.completion_time_for(candidate, 2.0) == 8.0

    def test_queued_work_incremental_consistency(self, setup):
        types, machine = setup
        tasks = [new_task(types, i, type_idx=i % 2) for i in range(4)]
        machine.enqueue(tasks[0], 0.0)
        machine.start_next(0.0)
        for t in tasks[1:]:
            machine.enqueue(t, 0.0)
        expected = sum(machine.eet_for(t) for t in machine.queue)
        assert machine.queued_work() == pytest.approx(expected)
        machine.drop_queued(tasks[2])
        expected = sum(machine.eet_for(t) for t in machine.queue)
        assert machine.queued_work() == pytest.approx(expected)

    def test_load(self, setup):
        types, machine = setup
        assert machine.load == 0
        machine.enqueue(new_task(types, 0), 0.0)
        machine.start_next(0.0)
        machine.enqueue(new_task(types, 1), 0.0)
        assert machine.load == 2


class TestLifecycle:
    def test_start_next_idle_empty_returns_none(self, setup):
        _, machine = setup
        assert machine.start_next(0.0) is None

    def test_start_next_runs_head(self, setup):
        types, machine = setup
        t = new_task(types, 0)
        machine.enqueue(t, 0.0)
        started = machine.start_next(0.0)
        assert started is t
        assert t.status is TaskStatus.RUNNING
        assert machine.run_finishes_at == 4.0

    def test_start_next_busy_returns_none(self, setup):
        types, machine = setup
        machine.enqueue(new_task(types, 0), 0.0)
        machine.start_next(0.0)
        machine.enqueue(new_task(types, 1), 0.0)
        assert machine.start_next(0.0) is None

    def test_custom_runtime_overrides_eet(self, setup):
        types, machine = setup
        machine.enqueue(new_task(types, 0), 0.0)
        started = machine.start_next(0.0, runtime=7.5)
        assert started.execution_time == 7.5
        assert machine.run_finishes_at == 7.5

    def test_finish_running(self, setup):
        types, machine = setup
        t = new_task(types, 0)
        machine.enqueue(t, 0.0)
        machine.start_next(0.0)
        finished = machine.finish_running(4.0)
        assert finished is t
        assert t.status is TaskStatus.COMPLETED
        assert machine.is_idle
        assert machine.completed_count == 1
        assert t.energy == pytest.approx(400.0)  # 100 W × 4 s

    def test_finish_without_running_raises(self, setup):
        _, machine = setup
        with pytest.raises(SimulationStateError):
            machine.finish_running(1.0)

    def test_drop_running(self, setup):
        types, machine = setup
        t = new_task(types, 0, deadline=3.0)
        machine.enqueue(t, 0.0)
        machine.start_next(0.0)
        dropped = machine.drop_running(3.0)
        assert dropped is t
        assert machine.is_idle
        assert machine.missed_count == 1
        assert t.energy == pytest.approx(300.0)  # partial run energy

    def test_drop_queued(self, setup):
        types, machine = setup
        machine.enqueue(new_task(types, 0), 0.0)
        machine.start_next(0.0)
        waiting = new_task(types, 1)
        machine.enqueue(waiting, 0.0)
        assert machine.drop_queued(waiting)
        assert machine.missed_count == 1
        assert len(machine.queue) == 0

    def test_drop_queued_absent(self, setup):
        types, machine = setup
        assert not machine.drop_queued(new_task(types, 9))

    def test_head_in_transit_blocks_start(self, setup):
        types, machine = setup
        t = new_task(types, 0)
        t.available_at = 5.0
        machine.enqueue(t, 0.0)
        assert machine.start_next(0.0) is None
        assert machine.start_next(5.0) is t


class TestEnergyAccounting:
    def test_idle_then_busy_then_finalize(self, setup):
        types, machine = setup
        t = new_task(types, 0)
        machine.enqueue(t, 0.0)
        machine.start_next(2.0)        # idle 0..2
        machine.finish_running(6.0)    # busy 2..6
        machine.finalize_energy(10.0)  # idle 6..10
        meter = machine.energy
        assert meter.idle_time == pytest.approx(6.0)
        assert meter.busy_time == pytest.approx(4.0)
        assert meter.idle_energy == pytest.approx(60.0)
        assert meter.busy_energy == pytest.approx(400.0)

    def test_utilization(self, setup):
        types, machine = setup
        machine.enqueue(new_task(types, 0), 0.0)
        machine.start_next(0.0)
        machine.finish_running(4.0)
        machine.finalize_energy(8.0)
        assert machine.energy.utilization() == pytest.approx(0.5)


class TestMemoryAdmission:
    def test_memory_constrained_acceptance(self):
        types = [TaskType("big", 0, memory=800.0), TaskType("small", 1, memory=100.0)]
        eet = EETMatrix(np.array([[4.0], [2.0]]), types, ["M"])
        mtype = MachineType("M", 0, memory_capacity=1000.0)
        machine = Machine(0, mtype, eet)
        big = Task(id=0, task_type=types[0], arrival_time=0.0, deadline=99.0)
        big.enqueue_batch()
        machine.enqueue(big, 0.0)
        another_big = Task(id=1, task_type=types[0], arrival_time=0.0, deadline=99.0)
        small = Task(id=2, task_type=types[1], arrival_time=0.0, deadline=99.0)
        assert not machine.can_accept(another_big)  # 800+800 > 1000
        assert machine.can_accept(small)            # 800+100 <= 1000

    def test_unconstrained_when_no_capacity(self, setup):
        types, machine = setup
        t = new_task(types, 0)
        assert machine.can_accept(t)
        assert machine.can_accept()
