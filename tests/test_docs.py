"""The teaching docs cannot rot: links resolve, snippets run.

Tier-1 twin of the CI docs job: the Markdown link/fence checker
(``tools/check_docs.py``) plus a real doctest pass over the runnable
``>>>`` snippets in README.md, docs/FEDERATION.md, docs/POLICIES.md,
docs/SERVICE.md and docs/WORKLOADS.md — the same numbers CI re-executes
with ``python -m doctest``.
"""

import doctest
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]


class TestDocsChecker:
    def test_check_docs_passes(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_docs.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert proc.stdout.startswith("OK:")

    def test_checker_catches_broken_links(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text(
            "see [missing](docs/NOPE.md)\n", encoding="utf-8"
        )
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO / "tools" / "check_docs.py"),
                "--root",
                str(tmp_path),
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "broken link" in proc.stdout

    def test_checker_catches_broken_anchor(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "GUIDE.md").write_text(
            "# Guide\n\n## Real Section\n", encoding="utf-8"
        )
        (tmp_path / "README.md").write_text(
            ">>> 1\n1\n\nsee [a](docs/GUIDE.md#real-section) "
            "and [b](docs/GUIDE.md#gone-section)\n",
            encoding="utf-8",
        )
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO / "tools" / "check_docs.py"),
                "--root",
                str(tmp_path),
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "broken anchor" in proc.stdout
        assert "#gone-section" in proc.stdout
        assert "#real-section" not in proc.stdout

    def test_checker_validates_same_page_fragments(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text(
            ">>> 1\n1\n\n## Alpha\n\njump to [nowhere](#beta)\n",
            encoding="utf-8",
        )
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO / "tools" / "check_docs.py"),
                "--root",
                str(tmp_path),
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "broken anchor" in proc.stdout

    def test_slugs_match_github_rules(self):
        sys.path.insert(0, str(REPO / "tools"))
        try:
            from check_docs import github_slug, heading_anchors
        finally:
            sys.path.pop(0)
        assert github_slug("1. Concepts: shards, the gateway") == (
            "1-concepts-shards-the-gateway"
        )
        assert github_slug("WAN `LinkChannel` energy") == "wan-linkchannel-energy"
        text = "# Dup\n\n# Dup\n\n```python\n# not a heading\n```\n"
        assert heading_anchors(text) == {"dup", "dup-1"}

    def test_checker_catches_vanished_doctests(self, tmp_path):
        # A README without any >>> snippet must fail the gate, not pass
        # vacuously.
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text("no snippets\n", encoding="utf-8")
        (tmp_path / "docs" / "FEDERATION.md").write_text(
            "none here either\n", encoding="utf-8"
        )
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO / "tools" / "check_docs.py"),
                "--root",
                str(tmp_path),
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "doctest" in proc.stdout


@pytest.mark.parametrize(
    "document",
    [
        "README.md",
        "docs/FEDERATION.md",
        "docs/POLICIES.md",
        "docs/SERVICE.md",
        "docs/WORKLOADS.md",
    ],
    ids=["readme", "guide", "policies", "service", "workloads"],
)
def test_doctest_snippets_execute(document):
    results = doctest.testfile(
        str(REPO / document), module_relative=False, verbose=False
    )
    assert results.attempted > 0, f"{document}: no doctest examples found"
    assert results.failed == 0, (
        f"{document}: {results.failed}/{results.attempted} doctest "
        "example(s) failed — the documented outputs no longer match the code"
    )
