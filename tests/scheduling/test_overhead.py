"""Scheduling-overhead model: decision latency charged to mapped tasks."""

import numpy as np
import pytest

from repro.core.config import Scenario
from repro.core.errors import ConfigurationError
from repro.core.simulator import Simulator
from repro.machines.cluster import Cluster
from repro.machines.eet import EETMatrix
from repro.scheduling.overhead import SchedulingOverhead
from repro.scheduling.registry import create_scheduler
from repro.tasks.task import Task
from repro.tasks.task_type import TaskType
from repro.tasks.workload import Workload


class TestModel:
    def test_defaults_free(self):
        model = SchedulingOverhead()
        assert model.is_free
        assert model.pass_delay(10, 10) == 0.0

    def test_pass_delay_formula(self):
        model = SchedulingOverhead(per_pass=0.5, per_cell=0.01)
        assert model.pass_delay(4, 3) == pytest.approx(0.5 + 0.12)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            SchedulingOverhead(per_pass=-1.0)
        with pytest.raises(ConfigurationError):
            SchedulingOverhead(per_cell=-0.1)

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            SchedulingOverhead().pass_delay(-1, 2)

    def test_spec_round_trip(self):
        model = SchedulingOverhead(per_pass=0.2, per_cell=0.05)
        clone = SchedulingOverhead.from_spec(model.spec())
        assert clone == model

    def test_from_none(self):
        assert SchedulingOverhead.from_spec(None).is_free


def single_machine(eet_value=4.0):
    task_type = TaskType("T", 0)
    eet = EETMatrix(np.array([[eet_value]]), [task_type], ["M"])
    return task_type, eet


class TestInSimulation:
    def test_fixed_overhead_delays_start(self):
        task_type, eet = single_machine()
        task = Task(id=0, task_type=task_type, arrival_time=0.0, deadline=99.0)
        sim = Simulator(
            cluster=Cluster.build(eet, {"M": 1}),
            workload=Workload(task_types=[task_type], tasks=[task]),
            scheduler=create_scheduler("FCFS"),
            scheduling_overhead=SchedulingOverhead(per_pass=0.5),
        )
        sim.run()
        assert task.start_time == pytest.approx(0.5)
        assert task.completion_time == pytest.approx(4.5)

    def test_per_cell_overhead_scales_with_backlog(self):
        """Batch passes pay per examined cell, so backlog raises latency.

        Capacity 1 forces tasks 1 and 2 to wait in the batch queue while
        task 0 occupies the slot; the pass at task 0's completion examines a
        2-task backlog and costs 2 × 0.1 s.
        """
        task_type, eet = single_machine()
        tasks = [
            Task(id=i, task_type=task_type, arrival_time=0.0, deadline=1e9)
            for i in range(3)
        ]
        sim = Simulator(
            cluster=Cluster.build(eet, {"M": 1}, queue_capacity=1),
            workload=Workload(task_types=[task_type], tasks=tasks),
            scheduler=create_scheduler("MM"),
            queue_capacity=1,
            scheduling_overhead=SchedulingOverhead(per_cell=0.1),
        )
        sim.run()
        # Task 0: its arrival pass saw 1 pending × 1 machine -> 0.1 s.
        assert tasks[0].start_time == pytest.approx(0.1)
        # Task 0 runs 0.1..4.1; the completion pass sees backlog [t1, t2]
        # -> 0.2 s decision latency; t1 starts at 4.3.
        assert tasks[1].start_time == pytest.approx(4.3)

    def test_zero_overhead_is_baseline(self):
        task_type, eet = single_machine()
        task = Task(id=0, task_type=task_type, arrival_time=0.0, deadline=99.0)
        sim = Simulator(
            cluster=Cluster.build(eet, {"M": 1}),
            workload=Workload(task_types=[task_type], tasks=[task]),
            scheduler=create_scheduler("FCFS"),
        )
        sim.run()
        assert task.start_time == 0.0

    def test_overhead_costs_completions_under_pressure(self, eet_3x2):
        base = Scenario(
            eet=eet_3x2,
            machine_counts={"M1": 1, "M2": 1},
            scheduler="MECT",
            generator={"duration": 200.0, "intensity": "high"},
            seed=3,
        )
        from dataclasses import replace

        # Small overheads can even *help* under drop-on-deadline (the delay
        # throttles doomed tasks before they waste machine time), so the
        # assertion sits at an operating point where decision latency
        # clearly dominates.
        slow = replace(
            base, scheduling_overhead={"per_pass": 15.0}, name="slow"
        )
        slow_summary = slow.run().summary
        base_summary = base.run().summary
        assert slow_summary.completion_rate < base_summary.completion_rate
        assert slow_summary.mean_wait_time > base_summary.mean_wait_time

    def test_batch_pays_more_than_immediate_for_per_cell(self, eet_3x2):
        """The §3 claim: immediate mode imposes a lower overhead."""
        from dataclasses import replace

        base = Scenario(
            eet=eet_3x2,
            machine_counts={"M1": 1, "M2": 1},
            scheduler="MECT",
            generator={"duration": 300.0, "intensity": "medium"},
            seed=5,
            scheduling_overhead={"per_cell": 0.02},
        )
        immediate = base.run()
        batch = replace(
            base, scheduler="MM", queue_capacity=3, name="batch"
        ).run()
        # Immediate passes see 1 pending task; batch passes see the backlog.
        imm_wait = immediate.summary.mean_wait_time
        batch_wait = batch.summary.mean_wait_time
        assert batch_wait > imm_wait

    def test_json_round_trip(self, scenario_factory):
        from dataclasses import replace

        scenario = replace(
            scenario_factory("MECT"),
            scheduling_overhead={"per_pass": 0.1, "per_cell": 0.01},
        )
        from repro.core.config import Scenario as S

        clone = S.from_json(scenario.to_json())
        assert clone.scheduling_overhead == {"per_pass": 0.1, "per_cell": 0.01}
        assert (
            clone.run().summary.as_dict() == scenario.run().summary.as_dict()
        )
