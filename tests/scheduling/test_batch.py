"""Batch policies: mapping order, capacity respect, energy/fairness logic.

System under test (eet_3x2 fixture):

           M1    M2
    T1    4.0  10.0
    T2    9.0   3.0
    T3    5.0   6.0
"""

import numpy as np
import pytest

from repro.machines.cluster import Cluster
from repro.machines.power import PowerProfile
from repro.scheduling.context import LiveTypeStats, SchedulingContext
from repro.scheduling.registry import create_scheduler
from repro.tasks.task import Task


def pending(task_types, specs):
    """specs: list of (type_idx, deadline) -> tasks with sequential ids."""
    tasks = []
    for i, (ti, dl) in enumerate(specs):
        t = Task(
            id=i, task_type=task_types[ti], arrival_time=0.0, deadline=dl
        )
        t.enqueue_batch()
        tasks.append(t)
    return tasks


def batch_ctx(cluster, tasks, now=0.0, type_stats=None):
    return SchedulingContext(
        now=now,
        pending=tasks,
        cluster=cluster,
        type_stats=type_stats or LiveTypeStats(),
        rng=np.random.default_rng(0),
    )


class TestMinMin:
    def test_maps_globally_smallest_first(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1}, queue_capacity=10)
        tasks = pending(task_types, [(0, 99.0), (1, 99.0), (2, 99.0)])
        assignments = create_scheduler("MM").schedule(
            batch_ctx(cluster, tasks)
        )
        # T2 on M2 = 3 (global min), then T1 on M1 = 4, then T3:
        # M1 ready 4 -> 4+5=9 vs M2 ready 3 -> 3+6=9: tie -> machine id order.
        assert [(a.task.id, a.machine.id) for a in assignments] == [
            (1, 1),
            (0, 0),
            (2, 0),
        ]

    def test_virtual_ready_times_respected(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1}, queue_capacity=10)
        tasks = pending(task_types, [(0, 99.0), (0, 99.0), (0, 99.0)])
        assignments = create_scheduler("MM").schedule(
            batch_ctx(cluster, tasks)
        )
        # T1 on M1 = 4; second T1 on M1 = 8 (< 10 on M2); third: M1 12 vs
        # M2 10 -> M2.
        machines = [a.machine.id for a in assignments]
        assert machines == [0, 0, 1]

    def test_respects_queue_capacity(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1}, queue_capacity=1)
        tasks = pending(task_types, [(0, 99.0)] * 5)
        assignments = create_scheduler("MM").schedule(
            batch_ctx(cluster, tasks)
        )
        assert len(assignments) == 2  # one slot per machine
        per_machine = {}
        for a in assignments:
            per_machine[a.machine.id] = per_machine.get(a.machine.id, 0) + 1
        assert all(v <= 1 for v in per_machine.values())

    def test_empty_pending(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1}, queue_capacity=3)
        assert create_scheduler("MM").schedule(batch_ctx(cluster, [])) == []

    def test_matches_reference_min_min(self, task_types):
        """Cross-check the mapping loop against a naive reference."""
        rng = np.random.default_rng(42)
        from repro.machines.eet import EETMatrix

        values = rng.uniform(1.0, 20.0, size=(3, 3))
        eet = EETMatrix(values, task_types, ["A", "B", "C"])
        cluster = Cluster.build(
            eet, {n: 1 for n in eet.machine_type_names}, queue_capacity=99
        )
        tasks = pending(task_types, [(i % 3, 999.0) for i in range(7)])
        got = create_scheduler("MM").schedule(batch_ctx(cluster, tasks))

        # Reference implementation.
        ready = np.zeros(3)
        remaining = list(range(len(tasks)))
        expected = []
        while remaining:
            best = None
            for i in remaining:
                row = values[tasks[i].task_type.index]
                completions = ready + row
                j = int(np.argmin(completions))
                cand = (completions[j], i, j)
                if best is None or cand[0] < best[0] or (
                    cand[0] == best[0] and (cand[1], cand[2]) < (best[1], best[2])
                ):
                    best = cand
            _, i, j = best
            expected.append((i, j))
            ready[j] += values[tasks[i].task_type.index][j]
            remaining.remove(i)

        assert [(a.task.id, a.machine.id) for a in got] == expected


class TestMaxMin:
    def test_longest_task_first(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1}, queue_capacity=10)
        tasks = pending(task_types, [(0, 99.0), (1, 99.0), (2, 99.0)])
        assignments = create_scheduler("MAXMIN").schedule(
            batch_ctx(cluster, tasks)
        )
        # Best completions: T1=4 (M1), T2=3 (M2), T3=5 (M1): Max-Min maps T3
        # first.
        assert assignments[0].task.id == 2
        assert assignments[0].machine.id == 0


class TestSufferage:
    def test_highest_sufferage_first(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1}, queue_capacity=10)
        tasks = pending(task_types, [(0, 99.0), (1, 99.0), (2, 99.0)])
        assignments = create_scheduler("SUFFERAGE").schedule(
            batch_ctx(cluster, tasks)
        )
        # Sufferage: T1 = 10-4 = 6, T2 = 9-3 = 6, T3 = 6-5 = 1.
        # Tie between T1, T2 -> argmax picks T1 first (row order).
        assert assignments[0].task.id == 0
        assert assignments[0].machine.id == 0

    def test_single_machine_degenerates_to_min_min_order(self, task_types):
        from repro.machines.eet import EETMatrix

        eet = EETMatrix(
            np.array([[4.0], [9.0], [5.0]]), task_types, ["M"]
        )
        cluster = Cluster.build(eet, {"M": 1}, queue_capacity=10)
        tasks = pending(task_types, [(0, 99.0), (1, 99.0), (2, 99.0)])
        assignments = create_scheduler("SUFFERAGE").schedule(
            batch_ctx(cluster, tasks)
        )
        assert len(assignments) == 3


class TestMMU:
    def test_least_slack_first(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1}, queue_capacity=10)
        # T1 best completion 4, deadline 20 -> slack 16
        # T2 best completion 3, deadline 5  -> slack 2   <- most urgent
        # T3 best completion 5, deadline 30 -> slack 25
        tasks = pending(task_types, [(0, 20.0), (1, 5.0), (2, 30.0)])
        assignments = create_scheduler("MMU").schedule(
            batch_ctx(cluster, tasks)
        )
        assert assignments[0].task.id == 1
        assert assignments[0].machine.id == 1

    def test_doomed_task_goes_first(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1}, queue_capacity=10)
        # T2 cannot meet deadline 1.0 anywhere (min completion 3): negative
        # slack = -2 sorts before any positive slack.
        tasks = pending(task_types, [(0, 50.0), (1, 1.0)])
        assignments = create_scheduler("MMU").schedule(
            batch_ctx(cluster, tasks)
        )
        assert assignments[0].task.id == 1


class TestMSD:
    def test_soonest_deadline_first(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1}, queue_capacity=10)
        tasks = pending(task_types, [(0, 50.0), (1, 8.0), (2, 30.0)])
        assignments = create_scheduler("MSD").schedule(
            batch_ctx(cluster, tasks)
        )
        assert [a.task.id for a in assignments] == [1, 2, 0]

    def test_each_on_min_completion_machine(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1}, queue_capacity=10)
        tasks = pending(task_types, [(1, 8.0)])
        (a,) = create_scheduler("MSD").schedule(batch_ctx(cluster, tasks))
        assert a.machine.id == 1  # T2: 3 on M2 < 9 on M1


def powered(eet_3x2, idle=(1.0, 1.0), busy=(100.0, 10.0), capacity=10):
    return Cluster.build(
        eet_3x2,
        {"M1": 1, "M2": 1},
        power_profiles={
            "M1": PowerProfile(idle_watts=idle[0], busy_watts=busy[0]),
            "M2": PowerProfile(idle_watts=idle[1], busy_watts=busy[1]),
        },
        queue_capacity=capacity,
    )


class TestELARE:
    def test_prefers_cheapest_feasible_energy(self, eet_3x2, task_types):
        cluster = powered(eet_3x2)
        # T1: M1 4s×100W = 400 J, M2 10s×10W = 100 J; both feasible (dl 50)
        tasks = pending(task_types, [(0, 50.0)])
        (a,) = create_scheduler("ELARE").schedule(batch_ctx(cluster, tasks))
        assert a.machine.id == 1

    def test_deadline_filters_cheap_option(self, eet_3x2, task_types):
        cluster = powered(eet_3x2)
        # Deadline 5: only M1 (completion 4) is feasible despite its wattage.
        tasks = pending(task_types, [(0, 5.0)])
        (a,) = create_scheduler("ELARE").schedule(batch_ctx(cluster, tasks))
        assert a.machine.id == 0

    def test_fallback_to_min_completion_when_infeasible(
        self, eet_3x2, task_types
    ):
        cluster = powered(eet_3x2)
        # Deadline 1: nothing feasible -> Min-Min fallback -> M1 (4 < 10).
        tasks = pending(task_types, [(0, 1.0)])
        (a,) = create_scheduler("ELARE").schedule(batch_ctx(cluster, tasks))
        assert a.machine.id == 0


class TestFELARE:
    def test_starved_type_served_first(self, eet_3x2, task_types):
        cluster = powered(eet_3x2)
        stats = LiveTypeStats()
        # T1 has been failing; T2 always succeeds.
        for _ in range(5):
            stats.record("T1", False)
            stats.record("T2", True)
        tasks = pending(task_types, [(1, 50.0), (0, 50.0)])
        assignments = create_scheduler("FELARE").schedule(
            batch_ctx(cluster, tasks, type_stats=stats)
        )
        assert assignments[0].task.task_type.name == "T1"

    def test_energy_choice_within_selected_task(self, eet_3x2, task_types):
        cluster = powered(eet_3x2)
        tasks = pending(task_types, [(0, 50.0)])
        (a,) = create_scheduler("FELARE").schedule(batch_ctx(cluster, tasks))
        assert a.machine.id == 1  # cheapest feasible, like ELARE

    def test_fallback_when_nothing_feasible(self, eet_3x2, task_types):
        cluster = powered(eet_3x2)
        tasks = pending(task_types, [(0, 1.0), (1, 1.0)])
        assignments = create_scheduler("FELARE").schedule(
            batch_ctx(cluster, tasks)
        )
        assert len(assignments) == 2  # falls back and still drains


class TestCapacityAcrossPolicies:
    @pytest.mark.parametrize(
        "policy", ["MM", "MAXMIN", "SUFFERAGE", "MMU", "MSD", "ELARE", "FELARE"]
    )
    def test_never_exceeds_slots(self, policy, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1}, queue_capacity=2)
        tasks = pending(task_types, [(i % 3, 99.0) for i in range(10)])
        assignments = create_scheduler(policy).schedule(
            batch_ctx(cluster, tasks)
        )
        per_machine = {}
        for a in assignments:
            per_machine[a.machine.id] = per_machine.get(a.machine.id, 0) + 1
        assert all(v <= 2 for v in per_machine.values())
        assert len(assignments) <= 4

    @pytest.mark.parametrize(
        "policy", ["MM", "MAXMIN", "SUFFERAGE", "MMU", "MSD", "ELARE", "FELARE"]
    )
    def test_each_task_mapped_at_most_once(self, policy, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1}, queue_capacity=5)
        tasks = pending(task_types, [(i % 3, 99.0) for i in range(8)])
        assignments = create_scheduler(policy).schedule(
            batch_ctx(cluster, tasks)
        )
        ids = [a.task.id for a in assignments]
        assert len(ids) == len(set(ids))
