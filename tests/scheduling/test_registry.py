"""Scheduler registry: lookup, aliases, plugin registration."""

import pytest

from repro.core.errors import ConfigurationError, UnknownSchedulerError
from repro.scheduling.base import (
    ImmediateScheduler,
    Scheduler,
    SchedulingMode,
)
from repro.scheduling.registry import (
    available_schedulers,
    create_scheduler,
    register_scheduler,
    scheduler_class,
)


class TestLookup:
    def test_paper_immediate_policies_present(self):
        names = available_schedulers(SchedulingMode.IMMEDIATE)
        for name in ("FCFS", "MECT", "MEET"):
            assert name in names

    def test_paper_batch_policies_present(self):
        names = available_schedulers(SchedulingMode.BATCH)
        for name in ("MM", "MMU", "MSD", "ELARE", "FELARE"):
            assert name in names

    def test_classic_extensions_present(self):
        names = available_schedulers()
        for name in ("OLB", "RR", "RANDOM", "KPB", "SA", "MAXMIN", "SUFFERAGE"):
            assert name in names

    def test_case_insensitive(self):
        assert scheduler_class("mect") is scheduler_class("MECT")

    def test_aliases(self):
        assert scheduler_class("MCT") is scheduler_class("MECT")
        assert scheduler_class("MET") is scheduler_class("MEET")
        assert scheduler_class("MINMIN") is scheduler_class("MM")
        assert scheduler_class("MIN-MIN") is scheduler_class("MM")

    def test_unknown_raises(self):
        with pytest.raises(UnknownSchedulerError):
            scheduler_class("HYPOTHETICAL")

    def test_create_with_params(self):
        scheduler = create_scheduler("KPB", k=25.0)
        assert scheduler.k == 25.0

    def test_create_with_bad_params(self):
        with pytest.raises(ConfigurationError):
            create_scheduler("FCFS", bogus=1)

    def test_sorted_listing(self):
        names = available_schedulers()
        assert names == sorted(names)


class TestPluginRegistration:
    def test_custom_policy_registrable(self, cluster_3x2, task_types):
        import uuid

        unique = f"TESTPOLICY_{uuid.uuid4().hex[:8].upper()}"

        @register_scheduler
        class AlwaysFirst(ImmediateScheduler):
            name = unique
            description = "test-only policy"

            def choose_machine(self, task, ctx):
                return ctx.cluster.machines[0]

        assert unique in available_schedulers()
        scheduler = create_scheduler(unique)
        assert isinstance(scheduler, AlwaysFirst)

    def test_nameless_policy_rejected(self):
        with pytest.raises(ConfigurationError):

            @register_scheduler
            class Nameless(ImmediateScheduler):
                name = ""

                def choose_machine(self, task, ctx):  # pragma: no cover
                    return None

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError):

            @register_scheduler
            class FakeMect(ImmediateScheduler):
                name = "MECT"

                def choose_machine(self, task, ctx):  # pragma: no cover
                    return None

    def test_alias_collision_with_name_rejected(self):
        import uuid

        unique = f"TP_{uuid.uuid4().hex[:8].upper()}"
        with pytest.raises(ConfigurationError):

            @register_scheduler(aliases=("FCFS",))
            class Colliding(ImmediateScheduler):
                name = unique

                def choose_machine(self, task, ctx):  # pragma: no cover
                    return None
