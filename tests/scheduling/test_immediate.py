"""Immediate policies: machine choices on hand-built cluster states.

System under test (eet_3x2 fixture):

           M1    M2
    T1    4.0  10.0
    T2    9.0   3.0
    T3    5.0   6.0
"""

import numpy as np
import pytest

from repro.machines.cluster import Cluster
from repro.scheduling.context import SchedulingContext
from repro.scheduling.registry import create_scheduler
from repro.tasks.task import Task


def pending_task(task_types, type_idx=0, task_id=0, deadline=100.0) -> Task:
    t = Task(
        id=task_id,
        task_type=task_types[type_idx],
        arrival_time=0.0,
        deadline=deadline,
    )
    t.enqueue_batch()
    return t


def occupy(machine, task_types, type_idx, now=0.0):
    """Give the machine a running task of the given type."""
    t = pending_task(task_types, type_idx, task_id=900 + machine.id)
    machine.enqueue(t, now)
    machine.start_next(now)
    return t


def ctx_for(cluster, task, now=0.0, rng_seed=0):
    return SchedulingContext(
        now=now,
        pending=[task],
        cluster=cluster,
        rng=np.random.default_rng(rng_seed),
    )


class TestFCFS:
    def test_all_idle_picks_first(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        task = pending_task(task_types, 0)
        scheduler = create_scheduler("FCFS")
        (a,) = scheduler.schedule(ctx_for(cluster, task))
        assert a.machine.id == 0

    def test_picks_earliest_ready_ignoring_eet(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        occupy(cluster[0], task_types, 1)  # M1 busy 9s with T2
        # T1 arrives: FCFS ignores that M1 is 2.5x faster for T1 and takes
        # the idle M2.
        task = pending_task(task_types, 0)
        (a,) = create_scheduler("FCFS").schedule(ctx_for(cluster, task))
        assert a.machine.id == 1


class TestMECT:
    def test_picks_min_completion(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        task = pending_task(task_types, 0)  # T1: 4 vs 10 -> M1
        (a,) = create_scheduler("MECT").schedule(ctx_for(cluster, task))
        assert a.machine.id == 0

    def test_accounts_for_load(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        occupy(cluster[0], task_types, 1)  # M1 busy until 9
        # T1: M1 -> 9 + 4 = 13; M2 -> 0 + 10 = 10 -> M2 wins
        task = pending_task(task_types, 0)
        (a,) = create_scheduler("MECT").schedule(ctx_for(cluster, task))
        assert a.machine.id == 1

    def test_t2_prefers_m2(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        task = pending_task(task_types, 1)  # T2: 9 vs 3 -> M2
        (a,) = create_scheduler("MECT").schedule(ctx_for(cluster, task))
        assert a.machine.id == 1


class TestMEET:
    def test_ignores_load(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        occupy(cluster[0], task_types, 1)  # M1 heavily loaded
        # MEET still sends T1 to M1 (EET 4 < 10) despite the queue.
        task = pending_task(task_types, 0)
        (a,) = create_scheduler("MEET").schedule(ctx_for(cluster, task))
        assert a.machine.id == 0

    def test_index_tie_break_on_homogeneous(self, eet_homogeneous, task_types):
        cluster = Cluster.build(eet_homogeneous, {"A": 1, "B": 1, "C": 1})
        occupy(cluster[0], task_types, 0)
        task = pending_task(task_types, 0, task_id=1)
        (a,) = create_scheduler("MEET").schedule(ctx_for(cluster, task))
        assert a.machine.id == 0  # faithful argmin: still machine 0

    def test_ready_time_tie_break_variant(self, eet_homogeneous, task_types):
        cluster = Cluster.build(eet_homogeneous, {"A": 1, "B": 1, "C": 1})
        occupy(cluster[0], task_types, 0)
        task = pending_task(task_types, 0, task_id=1)
        scheduler = create_scheduler("MEET", tie_break="ready_time")
        (a,) = scheduler.schedule(ctx_for(cluster, task))
        assert a.machine.id == 1  # least-loaded among EET ties

    def test_bad_tie_break_rejected(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            create_scheduler("MEET", tie_break="coin_flip")


class TestOLB:
    def test_matches_fcfs_choice(self, eet_3x2, task_types):
        c1 = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        c2 = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        occupy(c1[0], task_types, 1)
        occupy(c2[0], task_types, 1)
        t1 = pending_task(task_types, 0)
        t2 = pending_task(task_types, 0)
        (a1,) = create_scheduler("FCFS").schedule(ctx_for(c1, t1))
        (a2,) = create_scheduler("OLB").schedule(ctx_for(c2, t2))
        assert a1.machine.id == a2.machine.id


class TestRoundRobin:
    def test_cycles(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        scheduler = create_scheduler("RR")
        choices = []
        for i in range(4):
            task = pending_task(task_types, 0, task_id=i)
            (a,) = scheduler.schedule(ctx_for(cluster, task))
            choices.append(a.machine.id)
        assert choices == [0, 1, 0, 1]

    def test_reset_restarts_cycle(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        scheduler = create_scheduler("RR")
        scheduler.schedule(ctx_for(cluster, pending_task(task_types, 0)))
        scheduler.reset()
        (a,) = scheduler.schedule(
            ctx_for(cluster, pending_task(task_types, 0, task_id=1))
        )
        assert a.machine.id == 0


class TestRandom:
    def test_seed_determinism(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        scheduler = create_scheduler("RANDOM")

        def choices(seed):
            rng = np.random.default_rng(seed)
            out = []
            for i in range(10):
                task = pending_task(task_types, 0, task_id=i)
                ctx = SchedulingContext(
                    now=0.0, pending=[task], cluster=cluster, rng=rng
                )
                (a,) = scheduler.schedule(ctx)
                out.append(a.machine.id)
            return out

        assert choices(5) == choices(5)

    def test_covers_all_machines(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        scheduler = create_scheduler("RANDOM")
        rng = np.random.default_rng(0)
        seen = set()
        for i in range(50):
            task = pending_task(task_types, 0, task_id=i)
            ctx = SchedulingContext(
                now=0.0, pending=[task], cluster=cluster, rng=rng
            )
            (a,) = scheduler.schedule(ctx)
            seen.add(a.machine.id)
        assert seen == {0, 1}


class TestKPB:
    def test_k100_equals_mect(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        occupy(cluster[0], task_types, 1)
        t_kpb = pending_task(task_types, 0)
        t_mect = pending_task(task_types, 0, task_id=1)
        (a_kpb,) = create_scheduler("KPB", k=100.0).schedule(
            ctx_for(cluster, t_kpb)
        )
        (a_mect,) = create_scheduler("MECT").schedule(ctx_for(cluster, t_mect))
        assert a_kpb.machine.id == a_mect.machine.id

    def test_small_k_equals_meet(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        occupy(cluster[0], task_types, 1)
        task = pending_task(task_types, 0)
        # k=50% of 2 machines -> subset of 1 (best EET) -> MEET behaviour
        (a,) = create_scheduler("KPB", k=50.0).schedule(ctx_for(cluster, task))
        assert a.machine.id == 0

    def test_invalid_k_rejected(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            create_scheduler("KPB", k=0.0)
        with pytest.raises(ConfigurationError):
            create_scheduler("KPB", k=150.0)


class TestSwitching:
    def test_starts_in_mct_mode(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        occupy(cluster[0], task_types, 1)  # imbalanced: r = 0/9 = 0
        task = pending_task(task_types, 0)
        scheduler = create_scheduler("SA")
        (a,) = scheduler.schedule(ctx_for(cluster, task))
        # MCT choice: M1 busy 9 + 4 = 13 vs M2 idle 10 -> M2
        assert a.machine.id == 1

    def test_switches_to_met_when_balanced(self, eet_3x2, task_types):
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        # Perfectly balanced (both idle, r = 1 >= r_high) -> MET mode:
        # T1 goes to M1 on EET even after M1 accumulates load.
        scheduler = create_scheduler("SA", r_low=0.1, r_high=0.9)
        first = pending_task(task_types, 0, task_id=0)
        (a0,) = scheduler.schedule(ctx_for(cluster, first))
        assert a0.machine.id == 0
        a0.machine.enqueue(first, 0.0)
        a0.machine.start_next(0.0)
        second = pending_task(task_types, 0, task_id=1)
        (a1,) = scheduler.schedule(ctx_for(cluster, second))
        assert a1.machine.id == 0  # still MET: r = 0/4 ... switched back?

    def test_reset_returns_to_mct(self):
        scheduler = create_scheduler("SA")
        scheduler._met_mode = True
        scheduler.reset()
        assert scheduler._met_mode is False

    def test_invalid_thresholds_rejected(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            create_scheduler("SA", r_low=0.9, r_high=0.5)
