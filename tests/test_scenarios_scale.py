"""Scale-tier scenario presets: registration, population size, behaviour.

Full-size scale runs live in the benchmark suite; here the presets are
exercised at reduced duration so the tier stays covered by the fast tests.
"""

import pytest

from repro.scenarios import (
    available_scenarios,
    build_scenario,
    scale_campus,
    scale_datacenter,
    scale_heavytail,
)
from repro.tasks.arrivals import ParetoProcess, arrival_process_from_spec


class TestRegistration:
    def test_all_scale_presets_registered(self):
        names = available_scenarios()
        for name in ("scale_campus", "scale_datacenter", "scale_heavytail"):
            assert name in names

    def test_buildable_by_name(self):
        scenario = build_scenario("scale_campus", duration=50.0)
        assert scenario.name == "scale_campus"


class TestPopulations:
    def test_campus_has_96_machines(self):
        cluster = scale_campus().build_cluster()
        assert len(cluster) == 96

    def test_datacenter_has_288_machines(self):
        cluster = scale_datacenter().build_cluster()
        assert len(cluster) == 288

    def test_heavytail_has_128_machines(self):
        cluster = scale_heavytail().build_cluster()
        assert len(cluster) == 128


class TestRuns:
    def test_campus_short_run_conserves_tasks(self):
        result = scale_campus(duration=60.0).run()
        summary = result.summary
        assert summary.total_tasks > 300
        assert (
            summary.completed + summary.cancelled + summary.missed
            == summary.total_tasks
        )

    def test_heavytail_short_run(self):
        result = scale_heavytail(duration=120.0).run()
        assert result.summary.total_tasks > 300

    def test_heavytail_oversubscription_causes_misses(self):
        # The stock preset runs at 2x capacity: deadline pressure must show.
        result = scale_heavytail(duration=600.0).run()
        assert result.summary.completion_rate < 1.0

    def test_determinism_across_runs(self):
        a = scale_campus(duration=60.0).run()
        b = scale_campus(duration=60.0).run()
        assert a.summary == b.summary
        assert a.events_processed == b.events_processed


class TestParetoArrivals:
    def test_spec_round_trip(self):
        process = ParetoProcess(shape=1.6, scale=0.3)
        rebuilt = arrival_process_from_spec(process.spec())
        assert rebuilt == process

    def test_heavytail_alias(self):
        process = arrival_process_from_spec(
            {"kind": "heavytail", "shape": 2.0, "scale": 1.0}
        )
        assert isinstance(process, ParetoProcess)

    def test_mean_rate(self):
        assert ParetoProcess(shape=3.0, scale=1.0).mean_rate() == 2.0

    def test_generate_sorted_positive(self):
        times = ParetoProcess(shape=1.5, scale=0.2).generate(0.0, 200.0, rng=7)
        assert len(times) > 10
        assert (times >= 0.0).all()
        assert (times[1:] >= times[:-1]).all()
        assert (times < 200.0).all()

    def test_empirical_rate_tracks_calibration(self):
        # Heavy tails converge slowly; accept a loose band around the mean.
        process = ParetoProcess(shape=2.5, scale=0.5)
        times = process.generate(0.0, 5000.0, rng=3)
        empirical = len(times) / 5000.0
        assert empirical == pytest.approx(process.mean_rate(), rel=0.35)

    def test_shape_must_exceed_one(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ParetoProcess(shape=1.0)

    def test_scale_must_be_positive(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ParetoProcess(shape=2.0, scale=0.0)
