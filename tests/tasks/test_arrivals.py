"""Arrival processes: windows, intensity scaling, spec round-trips."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.tasks.arrivals import (
    BurstyProcess,
    ConstantProcess,
    NormalProcess,
    PoissonProcess,
    UniformProcess,
    arrival_process_from_spec,
)

ALL_PROCESSES = [
    PoissonProcess(rate=2.0),
    UniformProcess(low=0.1, high=0.5),
    NormalProcess(mean=0.4, std=0.1),
    ConstantProcess(period=0.25),
    BurstyProcess(burst_rate=5.0, burst_duration=2.0, idle_duration=1.0),
]


@pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: p.kind)
class TestAllProcesses:
    def test_times_sorted_and_in_window(self, process):
        times = process.generate(10.0, 50.0, rng=1)
        assert np.all(np.diff(times) >= 0)
        assert times.size == 0 or (times[0] >= 10.0 and times[-1] < 50.0)

    def test_deterministic_under_seed(self, process):
        a = process.generate(0.0, 30.0, rng=7)
        b = process.generate(0.0, 30.0, rng=7)
        np.testing.assert_array_equal(a, b)

    def test_empty_window(self, process):
        assert process.generate(5.0, 5.0, rng=0).size == 0

    def test_higher_intensity_more_arrivals(self, process):
        low = process.generate(0.0, 200.0, rng=3, intensity=0.5).size
        high = process.generate(0.0, 200.0, rng=3, intensity=2.0).size
        assert high > low

    def test_invalid_window_rejected(self, process):
        with pytest.raises(ConfigurationError):
            process.generate(10.0, 5.0, rng=0)

    def test_invalid_intensity_rejected(self, process):
        with pytest.raises(ConfigurationError):
            process.generate(0.0, 10.0, rng=0, intensity=0.0)

    def test_spec_round_trip(self, process):
        clone = arrival_process_from_spec(process.spec())
        a = process.generate(0.0, 20.0, rng=5)
        b = clone.generate(0.0, 20.0, rng=5)
        np.testing.assert_array_equal(a, b)


class TestRates:
    def test_poisson_empirical_rate(self):
        process = PoissonProcess(rate=3.0)
        times = process.generate(0.0, 1000.0, rng=11)
        assert times.size == pytest.approx(3000, rel=0.1)

    def test_constant_exact_count(self):
        process = ConstantProcess(period=1.0)
        times = process.generate(0.0, 10.0, rng=0)
        # arrivals at 1, 2, ..., 9 (cumulative gaps inside [0, 10))
        assert times.size == 9

    def test_uniform_mean_rate(self):
        process = UniformProcess(low=0.2, high=0.6)
        assert process.mean_rate() == pytest.approx(2.0 / 0.8)

    def test_bursty_mean_rate_uses_duty_cycle(self):
        process = BurstyProcess(
            burst_rate=10.0, burst_duration=1.0, idle_duration=1.0
        )
        assert process.mean_rate() == pytest.approx(5.0)

    def test_intensity_scales_poisson_rate(self):
        process = PoissonProcess(rate=2.0)
        n = process.generate(0.0, 1000.0, rng=13, intensity=2.0).size
        assert n == pytest.approx(4000, rel=0.1)


class TestValidation:
    def test_poisson_rate_positive(self):
        with pytest.raises(ConfigurationError):
            PoissonProcess(rate=0.0)

    def test_uniform_ordering(self):
        with pytest.raises(ConfigurationError):
            UniformProcess(low=1.0, high=0.5)

    def test_normal_mean_positive(self):
        with pytest.raises(ConfigurationError):
            NormalProcess(mean=0.0, std=0.1)

    def test_constant_period_positive(self):
        with pytest.raises(ConfigurationError):
            ConstantProcess(period=-1.0)

    def test_bursty_positive_parameters(self):
        with pytest.raises(ConfigurationError):
            BurstyProcess(burst_rate=0.0, burst_duration=1.0, idle_duration=1.0)

    def test_spec_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            arrival_process_from_spec({"kind": "zipf"})

    def test_spec_missing_kind(self):
        with pytest.raises(ConfigurationError):
            arrival_process_from_spec({"rate": 2.0})

    def test_spec_bad_params(self):
        with pytest.raises(ConfigurationError):
            arrival_process_from_spec({"kind": "poisson", "lam": 2.0})

    def test_exponential_alias(self):
        process = arrival_process_from_spec(
            {"kind": "exponential", "rate": 1.5}
        )
        assert isinstance(process, PoissonProcess)
