"""TaskType validation and builders."""

import pytest

from repro.core.errors import ConfigurationError
from repro.tasks.task_type import TaskType, build_task_types


class TestTaskType:
    def test_basic_construction(self):
        t = TaskType("detect", 0, relative_deadline=5.0)
        assert t.name == "detect"
        assert t.index == 0
        assert str(t) == "detect"

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskType("", 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskType("x", -1)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskType("x", 0, relative_deadline=0.0)

    def test_negative_footprints_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskType("x", 0, memory=-1.0)
        with pytest.raises(ConfigurationError):
            TaskType("x", 0, data_in=-1.0)

    def test_frozen(self):
        t = TaskType("x", 0)
        with pytest.raises(AttributeError):
            t.name = "y"  # type: ignore[misc]


class TestBuildTaskTypes:
    def test_indices_assigned_in_order(self):
        types = build_task_types(["a", "b", "c"])
        assert [t.index for t in types] == [0, 1, 2]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            build_task_types(["a", "a"])

    def test_deadlines_attached(self):
        types = build_task_types(["a", "b"], relative_deadlines=[3.0, 4.0])
        assert types[0].relative_deadline == 3.0
        assert types[1].relative_deadline == 4.0

    def test_deadline_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            build_task_types(["a", "b"], relative_deadlines=[3.0])
