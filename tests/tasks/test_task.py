"""Task lifecycle state machine and derived quantities."""

import math

import pytest

from repro.core.errors import SimulationStateError, WorkloadError
from repro.tasks.task import DropStage, Task, TaskStatus
from repro.tasks.task_type import TaskType

T = TaskType("T1", 0)


def fresh(arrival=0.0, deadline=100.0) -> Task:
    return Task(id=0, task_type=T, arrival_time=arrival, deadline=deadline)


class TestValidation:
    def test_negative_id_rejected(self):
        with pytest.raises(WorkloadError):
            Task(id=-1, task_type=T, arrival_time=0.0, deadline=1.0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(WorkloadError):
            Task(id=0, task_type=T, arrival_time=-1.0, deadline=1.0)

    def test_deadline_before_arrival_rejected(self):
        with pytest.raises(WorkloadError):
            Task(id=0, task_type=T, arrival_time=5.0, deadline=4.0)

    def test_nan_arrival_rejected(self):
        with pytest.raises(WorkloadError):
            Task(id=0, task_type=T, arrival_time=math.nan, deadline=1.0)

    def test_infinite_deadline_allowed(self):
        task = fresh(deadline=math.inf)
        assert task.deadline == math.inf


class TestLifecycle:
    def test_happy_path(self):
        task = fresh()
        task.enqueue_batch()
        assert task.status is TaskStatus.IN_BATCH_QUEUE
        task.assign(machine=None, now=1.0)  # type: ignore[arg-type]
        assert task.status is TaskStatus.ASSIGNED
        assert task.assigned_time == 1.0
        task.start(2.0)
        assert task.status is TaskStatus.RUNNING
        task.complete(7.0)
        assert task.status is TaskStatus.COMPLETED
        assert task.status.is_terminal

    def test_cancel_from_batch_queue(self):
        task = fresh()
        task.enqueue_batch()
        task.cancel(3.0)
        assert task.status is TaskStatus.CANCELLED
        assert task.cancelled_time == 3.0

    def test_miss_while_assigned(self):
        task = fresh()
        task.enqueue_batch()
        task.assign(None, 1.0)  # type: ignore[arg-type]
        task.miss(4.0, DropStage.MACHINE_QUEUE)
        assert task.status is TaskStatus.MISSED
        assert task.drop_stage is DropStage.MACHINE_QUEUE

    def test_miss_while_running(self):
        task = fresh()
        task.enqueue_batch()
        task.assign(None, 1.0)  # type: ignore[arg-type]
        task.start(2.0)
        task.miss(5.0, DropStage.EXECUTING)
        assert task.status is TaskStatus.MISSED
        assert task.missed_time == 5.0

    def test_cannot_complete_without_running(self):
        task = fresh()
        with pytest.raises(SimulationStateError):
            task.complete(1.0)

    def test_cannot_start_without_assignment(self):
        task = fresh()
        task.enqueue_batch()
        with pytest.raises(SimulationStateError):
            task.start(1.0)

    def test_cannot_cancel_after_assignment(self):
        task = fresh()
        task.enqueue_batch()
        task.assign(None, 1.0)  # type: ignore[arg-type]
        with pytest.raises(SimulationStateError):
            task.cancel(2.0)

    def test_cannot_miss_terminal_task(self):
        task = fresh()
        task.enqueue_batch()
        task.cancel(1.0)
        with pytest.raises(SimulationStateError):
            task.miss(2.0, DropStage.EXECUTING)

    def test_double_enqueue_rejected(self):
        task = fresh()
        task.enqueue_batch()
        with pytest.raises(SimulationStateError):
            task.enqueue_batch()


class TestDerived:
    def _completed(self, completion: float, deadline: float = 100.0) -> Task:
        task = fresh(deadline=deadline)
        task.enqueue_batch()
        task.assign(None, 0.0)  # type: ignore[arg-type]
        task.start(1.0)
        task.complete(completion)
        return task

    def test_on_time_true(self):
        assert self._completed(50.0).on_time

    def test_on_time_at_exact_deadline(self):
        assert self._completed(100.0).on_time

    def test_on_time_false_when_late(self):
        assert not self._completed(101.0).on_time

    def test_on_time_false_for_missed(self):
        task = fresh()
        task.enqueue_batch()
        task.assign(None, 0.0)  # type: ignore[arg-type]
        task.miss(4.0, DropStage.MACHINE_QUEUE)
        assert not task.on_time

    def test_slack(self):
        task = Task(id=0, task_type=T, arrival_time=2.0, deadline=12.0)
        assert task.slack == 10.0

    def test_urgency_increases_toward_deadline(self):
        task = fresh(deadline=10.0)
        assert task.urgency(0.0) < task.urgency(8.0)

    def test_urgency_infinite_past_deadline(self):
        task = fresh(deadline=10.0)
        assert task.urgency(10.0) == math.inf
        assert task.urgency(11.0) == math.inf

    def test_wait_and_response_none_before_events(self):
        task = fresh()
        assert task.wait_time is None
        assert task.response_time is None

    def test_wait_and_response_values(self):
        task = self._completed(9.0)
        assert task.wait_time == 1.0
        assert task.response_time == 9.0
