"""Workload generator: calibration, deadlines, intensity monotonicity."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.tasks.generator import (
    INTENSITY_LEVELS,
    TaskTypeSpec,
    WorkloadGenerator,
    oversubscription_for_level,
)
from repro.tasks.arrivals import ConstantProcess


class TestIntensityLevels:
    def test_labels(self):
        assert oversubscription_for_level("low") == 0.5
        assert oversubscription_for_level("medium") == 1.0
        assert oversubscription_for_level("high") == 2.0

    def test_case_insensitive(self):
        assert oversubscription_for_level("HIGH") == 2.0

    def test_raw_ratio_passthrough(self):
        assert oversubscription_for_level(1.7) == 1.7

    def test_unknown_label_rejected(self):
        with pytest.raises(ConfigurationError):
            oversubscription_for_level("extreme")

    def test_nonpositive_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            oversubscription_for_level(0.0)


class TestCalibration:
    def test_service_rate_single_machine(self, eet_3x2):
        gen = WorkloadGenerator(eet_3x2, machine_counts=[1, 0])
        # M1 column: [4, 9, 5], equal shares -> mix EET 6 -> rate 1/6
        assert gen.system_service_rate() == pytest.approx(1.0 / 6.0)

    def test_service_rate_scales_with_machines(self, eet_3x2):
        one = WorkloadGenerator(eet_3x2, machine_counts=[1, 0])
        three = WorkloadGenerator(eet_3x2, machine_counts=[3, 0])
        assert three.system_service_rate() == pytest.approx(
            3 * one.system_service_rate()
        )

    def test_rates_sum_to_ratio_times_capacity(self, eet_3x2):
        gen = WorkloadGenerator(eet_3x2, machine_counts=[1, 1])
        rates = gen.rates_for_oversubscription(2.0)
        assert sum(rates.values()) == pytest.approx(
            2.0 * gen.system_service_rate()
        )

    def test_shares_respected(self, eet_3x2):
        specs = [
            TaskTypeSpec("T1", share=3.0),
            TaskTypeSpec("T2", share=1.0),
            TaskTypeSpec("T3", share=1.0),
        ]
        gen = WorkloadGenerator(eet_3x2, specs, machine_counts=[1, 1])
        rates = gen.rates_for_oversubscription(1.0)
        assert rates["T1"] == pytest.approx(3 * rates["T2"])

    def test_zero_machines_rejected(self, eet_3x2):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(eet_3x2, machine_counts=[0, 0])

    def test_unknown_spec_type_rejected(self, eet_3x2):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(eet_3x2, [TaskTypeSpec("NOPE")])

    def test_duplicate_specs_rejected(self, eet_3x2):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(
                eet_3x2, [TaskTypeSpec("T1"), TaskTypeSpec("T1")]
            )


class TestGeneration:
    def test_workload_within_duration(self, eet_3x2):
        gen = WorkloadGenerator(eet_3x2)
        w = gen.generate(100.0, seed=1)
        assert all(0.0 <= t.arrival_time < 100.0 for t in w)

    def test_deterministic(self, eet_3x2):
        gen = WorkloadGenerator(eet_3x2)
        a = gen.generate(100.0, seed=5)
        b = gen.generate(100.0, seed=5)
        assert [(t.arrival_time, t.task_type.name) for t in a] == [
            (t.arrival_time, t.task_type.name) for t in b
        ]

    def test_intensity_monotone_in_task_count(self, eet_3x2):
        gen = WorkloadGenerator(eet_3x2)
        low = len(gen.generate(400.0, intensity="low", seed=2))
        medium = len(gen.generate(400.0, intensity="medium", seed=2))
        high = len(gen.generate(400.0, intensity="high", seed=2))
        assert low < medium < high

    def test_empirical_rate_matches_calibration(self, eet_3x2):
        gen = WorkloadGenerator(eet_3x2, machine_counts=[1, 1])
        w = gen.generate(3000.0, intensity="medium", seed=3)
        expected = gen.system_service_rate() * 3000.0
        assert len(w) == pytest.approx(expected, rel=0.1)

    def test_deadlines_follow_slack_factor(self, eet_3x2):
        specs = [TaskTypeSpec(n, slack_factor=2.0) for n in ("T1", "T2", "T3")]
        gen = WorkloadGenerator(eet_3x2, specs)
        w = gen.generate(100.0, seed=4)
        for task in w:
            expected = 2.0 * eet_3x2.row(task.task_type).mean()
            assert task.deadline - task.arrival_time == pytest.approx(expected)

    def test_fixed_relative_deadline_wins(self, eet_3x2):
        fixed = eet_3x2.with_task_types(
            [
                type(t)(name=t.name, index=t.index, relative_deadline=42.0)
                for t in eet_3x2.task_types
            ]
        )
        gen = WorkloadGenerator(fixed)
        w = gen.generate(100.0, seed=4)
        assert all(
            t.deadline - t.arrival_time == pytest.approx(42.0) for t in w
        )

    def test_explicit_arrival_process_used(self, eet_3x2):
        specs = [
            TaskTypeSpec("T1", arrival=ConstantProcess(period=10.0)),
            TaskTypeSpec("T2", share=0.0001),
            TaskTypeSpec("T3", share=0.0001),
        ]
        # share ~0 suppresses the calibrated types; T1 arrives every 10 s.
        gen = WorkloadGenerator(eet_3x2, specs)
        w = gen.generate(100.0, intensity=1.0, seed=6)
        t1_arrivals = [
            t.arrival_time for t in w if t.task_type.name == "T1"
        ]
        assert len(t1_arrivals) == 9
        np.testing.assert_allclose(np.diff(t1_arrivals), 10.0)

    def test_nonpositive_duration_rejected(self, eet_3x2):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(eet_3x2).generate(0.0)


class TestGenerateCount:
    def test_exact_count(self, eet_3x2):
        gen = WorkloadGenerator(eet_3x2)
        w = gen.generate_count(25, seed=9)
        assert len(w) == 25
        assert [t.id for t in w] == list(range(25))

    def test_sorted_after_trim(self, eet_3x2):
        gen = WorkloadGenerator(eet_3x2)
        w = gen.generate_count(30, seed=10)
        arrivals = [t.arrival_time for t in w]
        assert arrivals == sorted(arrivals)

    def test_nonpositive_count_rejected(self, eet_3x2):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(eet_3x2).generate_count(0)
