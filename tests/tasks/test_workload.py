"""Workload container: sorting, validation, copies, scaling."""

import pytest

from repro.core.errors import IncompatibleWorkloadError, WorkloadError
from repro.tasks.task import Task, TaskStatus
from repro.tasks.task_type import TaskType
from repro.tasks.workload import Workload


class TestConstruction:
    def test_tasks_sorted_by_arrival(self, task_types, make_workload):
        w = make_workload([(0, 5.0, 100.0), (1, 1.0, 100.0), (2, 3.0, 100.0)])
        assert [t.arrival_time for t in w] == [1.0, 3.0, 5.0]

    def test_duplicate_type_names_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(task_types=[TaskType("A", 0), TaskType("A", 1)])

    def test_gapped_indices_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(task_types=[TaskType("A", 0), TaskType("B", 2)])

    def test_duplicate_task_ids_rejected(self, task_types):
        tasks = [
            Task(id=1, task_type=task_types[0], arrival_time=0.0, deadline=1.0),
            Task(id=1, task_type=task_types[0], arrival_time=1.0, deadline=2.0),
        ]
        with pytest.raises(WorkloadError):
            Workload(task_types=task_types, tasks=tasks)

    def test_unknown_task_type_rejected(self, task_types):
        alien = TaskType("ALIEN", 0)
        tasks = [Task(id=0, task_type=alien, arrival_time=0.0, deadline=1.0)]
        with pytest.raises(IncompatibleWorkloadError):
            Workload(task_types=task_types, tasks=tasks)

    def test_container_protocol(self, make_workload):
        w = make_workload([(0, 0.0, 10.0), (1, 1.0, 11.0)])
        assert len(w) == 2
        assert w[0].arrival_time == 0.0
        assert [t.id for t in w] == [0, 1]


class TestLookups:
    def test_type_by_name(self, make_workload, task_types):
        w = make_workload([(0, 0.0, 10.0)])
        assert w.type_by_name("T2") is task_types[1]

    def test_type_by_name_unknown(self, make_workload):
        w = make_workload([(0, 0.0, 10.0)])
        with pytest.raises(IncompatibleWorkloadError):
            w.type_by_name("nope")

    def test_counts_by_type(self, make_workload):
        w = make_workload([(0, 0.0, 10.0), (0, 1.0, 11.0), (2, 2.0, 12.0)])
        assert w.counts_by_type() == {"T1": 2, "T2": 0, "T3": 1}


class TestDerived:
    def test_makespan_window(self, make_workload):
        w = make_workload([(0, 2.0, 10.0), (1, 8.0, 20.0)])
        assert w.makespan_window == (2.0, 8.0)
        assert w.duration == 6.0

    def test_empty_window(self, task_types):
        w = Workload(task_types=task_types)
        assert w.makespan_window == (0.0, 0.0)
        assert w.mean_arrival_rate() == 0.0

    def test_mean_arrival_rate(self, make_workload):
        w = make_workload([(0, 0.0, 10.0), (0, 1.0, 11.0), (0, 2.0, 12.0)])
        assert w.mean_arrival_rate() == pytest.approx(1.0)


class TestFreshCopy:
    def test_copy_resets_status(self, make_workload):
        w = make_workload([(0, 0.0, 10.0)])
        w[0].enqueue_batch()
        clone = w.fresh_copy()
        assert clone[0].status is TaskStatus.CREATED
        assert w[0].status is TaskStatus.IN_BATCH_QUEUE  # original untouched

    def test_copy_preserves_times(self, make_workload):
        w = make_workload([(0, 3.0, 13.0), (1, 5.0, 25.0)])
        clone = w.fresh_copy()
        assert [(t.arrival_time, t.deadline) for t in clone] == [
            (3.0, 13.0),
            (5.0, 25.0),
        ]

    def test_copy_is_distinct_objects(self, make_workload):
        w = make_workload([(0, 0.0, 10.0)])
        assert w.fresh_copy()[0] is not w[0]


class TestScaled:
    def test_scaling_compresses_arrivals_keeps_relative_deadlines(
        self, make_workload
    ):
        w = make_workload([(0, 10.0, 15.0)])
        half = w.scaled(0.5)
        assert half[0].arrival_time == 5.0
        assert half[0].deadline == 10.0  # relative deadline 5 preserved

    def test_nonpositive_factor_rejected(self, make_workload):
        w = make_workload([(0, 0.0, 10.0)])
        with pytest.raises(WorkloadError):
            w.scaled(0.0)


class TestFromArrays:
    def test_vectorised_constructor(self, task_types):
        w = Workload.from_arrays(
            task_types,
            type_indices=[2, 0],
            arrival_times=[5.0, 1.0],
            deadlines=[15.0, 11.0],
        )
        assert [t.task_type.name for t in w] == ["T1", "T3"]
        assert [t.id for t in w] == [0, 1]  # ids follow arrival order

    def test_mismatched_lengths_rejected(self, task_types):
        with pytest.raises(WorkloadError):
            Workload.from_arrays(task_types, [0], [0.0, 1.0], [1.0])

    def test_out_of_range_type_rejected(self, task_types):
        with pytest.raises(WorkloadError):
            Workload.from_arrays(task_types, [7], [0.0], [1.0])
