"""Workload CSV round-trips and error handling (Fig-2 file formats)."""

import io

import pytest

from repro.core.errors import ConfigurationError, WorkloadError
from repro.tasks.task_type import TaskType
from repro.tasks.trace_io import (
    TraceSpec,
    read_workload_csv,
    resolve_trace_path,
    workload_from_rows,
    write_workload_csv,
)

CSV_BASIC = """task_id,task_type,arrival_time,deadline
0,T1,0.0,10.0
1,T2,1.5,21.5
2,T1,3.0,13.0
"""

CSV_NO_DEADLINE = """task_id,task_type,arrival_time
0,T1,0.0
1,T2,2.0
"""


class TestRead:
    def test_basic_parse(self):
        w = read_workload_csv(io.StringIO(CSV_BASIC))
        assert len(w) == 3
        assert w[0].task_type.name == "T1"
        assert w[1].deadline == 21.5

    def test_types_inferred_in_first_appearance_order(self):
        w = read_workload_csv(io.StringIO(CSV_BASIC))
        assert [t.name for t in w.task_types] == ["T1", "T2"]
        assert [t.index for t in w.task_types] == [0, 1]

    def test_explicit_task_types_respected(self):
        types = [TaskType("T1", 0), TaskType("T2", 1), TaskType("T3", 2)]
        w = read_workload_csv(io.StringIO(CSV_BASIC), task_types=types)
        assert len(w.task_types) == 3

    def test_unknown_type_with_explicit_universe_rejected(self):
        types = [TaskType("T1", 0)]
        with pytest.raises(WorkloadError):
            read_workload_csv(io.StringIO(CSV_BASIC), task_types=types)

    def test_missing_deadline_uses_default(self):
        w = read_workload_csv(
            io.StringIO(CSV_NO_DEADLINE), default_relative_deadline=5.0
        )
        assert w[0].deadline == 5.0
        assert w[1].deadline == 7.0

    def test_missing_deadline_uses_type_relative(self):
        types = [
            TaskType("T1", 0, relative_deadline=3.0),
            TaskType("T2", 1, relative_deadline=4.0),
        ]
        w = read_workload_csv(io.StringIO(CSV_NO_DEADLINE), task_types=types)
        assert w[0].deadline == 3.0
        assert w[1].deadline == 6.0

    def test_missing_deadline_without_fallback_rejected(self):
        with pytest.raises(WorkloadError):
            read_workload_csv(io.StringIO(CSV_NO_DEADLINE))

    def test_empty_file_rejected(self):
        with pytest.raises(WorkloadError):
            read_workload_csv(io.StringIO(""))

    def test_missing_columns_rejected(self):
        with pytest.raises(WorkloadError):
            read_workload_csv(io.StringIO("task_id,when\n0,1.0\n"))

    def test_bad_number_reports_line(self):
        bad = "task_id,task_type,arrival_time,deadline\n0,T1,abc,1.0\n"
        with pytest.raises(WorkloadError, match="line 2"):
            read_workload_csv(io.StringIO(bad))

    def test_from_path(self, tmp_path):
        path = tmp_path / "workload.csv"
        path.write_text(CSV_BASIC, encoding="utf-8")
        assert len(read_workload_csv(path)) == 3


class TestWrite:
    def test_round_trip(self):
        original = read_workload_csv(io.StringIO(CSV_BASIC))
        text = write_workload_csv(original)
        again = read_workload_csv(io.StringIO(text))
        assert [
            (t.id, t.task_type.name, t.arrival_time, t.deadline)
            for t in again
        ] == [
            (t.id, t.task_type.name, t.arrival_time, t.deadline)
            for t in original
        ]

    def test_write_to_path(self, tmp_path):
        original = read_workload_csv(io.StringIO(CSV_BASIC))
        path = tmp_path / "out.csv"
        write_workload_csv(original, path)
        assert path.read_text(encoding="utf-8").startswith("task_id,")

    def test_write_to_stream(self):
        original = read_workload_csv(io.StringIO(CSV_BASIC))
        buf = io.StringIO()
        write_workload_csv(original, buf)
        assert buf.getvalue().count("\n") == 4  # header + 3 rows


class TestWorkloadFromRows:
    def test_rows_to_workload(self):
        rows = [
            {"task_id": 0, "task_type": "A", "arrival_time": 0.0, "deadline": 5.0},
            {"task_id": 1, "task_type": "B", "arrival_time": 1.0, "deadline": 6.0},
        ]
        w = workload_from_rows(rows)
        assert len(w) == 2
        assert [t.name for t in w.task_types] == ["A", "B"]


CSV_EXTRAS = """task_id,task_type,arrival_time,deadline,priority,user
0,T1,0,10,high,alice
1,T2,1.5,21.5,low,bob
"""


class TestExtras:
    def test_extra_columns_parsed_into_extras(self):
        w = read_workload_csv(io.StringIO(CSV_EXTRAS))
        assert w[0].extras == (("priority", "high"), ("user", "alice"))
        assert w[1].extras == (("priority", "low"), ("user", "bob"))

    def test_round_trip_preserves_extra_columns(self):
        text = write_workload_csv(read_workload_csv(io.StringIO(CSV_EXTRAS)))
        assert text == CSV_EXTRAS

    def test_extras_survive_fresh_copy_and_scaled(self):
        w = read_workload_csv(io.StringIO(CSV_EXTRAS))
        assert w.fresh_copy()[0].extras == w[0].extras
        assert w.scaled(2.0)[1].extras == w[1].extras

    def test_missing_deadline_error_names_task_and_line(self):
        with pytest.raises(
            WorkloadError, match=r"task 0 \(CSV line 2\): no deadline"
        ):
            read_workload_csv(io.StringIO(CSV_NO_DEADLINE))

    def test_extras_accepted_as_mapping(self):
        rows = [
            {
                "task_id": 0,
                "task_type": "A",
                "arrival_time": 0.0,
                "deadline": 5.0,
                "extras": {"priority": "high"},
            }
        ]
        w = workload_from_rows(rows)
        assert w[0].extras == (("priority", "high"),)


TRACE_CSV = """job_id,submit_us,cpus,klass
j1,1000000,0.1,T1
j2,3000000,0.4,T2
j3,2000000,0.2,T1
j4,9000000,0.8,T2
"""


def _trace_eet():
    import numpy as np

    from repro.machines.eet import EETMatrix

    return EETMatrix(
        np.array([[2.0, 1.0], [8.0, 4.0]]),
        [
            TaskType("T1", 0, relative_deadline=10.0),
            TaskType("T2", 1, relative_deadline=20.0),
        ],
        ["CPU", "GPU"],
    )


class TestTraceSpec:
    def _spec(self, tmp_path, **overrides):
        path = tmp_path / "trace.csv"
        path.write_text(TRACE_CSV, encoding="utf-8")
        options = {
            "path": str(path),
            "columns": {
                "task_id": "job_id",
                "arrival_time": "submit_us",
                "task_type": "klass",
            },
            "time_unit": 1e-6,
        }
        options.update(overrides)
        return TraceSpec(**options)

    def test_basic_import_rebases_and_sorts(self, tmp_path):
        w = self._spec(tmp_path).build_workload(_trace_eet())
        assert [t.arrival_time for t in w] == [0.0, 1.0, 2.0, 8.0]
        assert [t.id for t in w] == [0, 1, 2, 3]
        assert [t.task_type.name for t in w] == ["T1", "T1", "T2", "T2"]

    def test_source_ids_and_unconsumed_columns_become_extras(self, tmp_path):
        w = self._spec(tmp_path).build_workload(_trace_eet())
        assert w[0].extras == (("source_id", "j1"), ("cpus", "0.1"))

    def test_deadline_synthesis_uses_slack_factor(self, tmp_path):
        w = self._spec(tmp_path, slack_factor=2.0).build_workload(_trace_eet())
        assert w[0].deadline == 0.0 + 2.0 * 10.0
        assert w[2].deadline == 2.0 + 2.0 * 20.0

    def test_window_filters_and_reshifts(self, tmp_path):
        spec = self._spec(tmp_path, window=(1.0, 5.0))
        w = spec.build_workload(_trace_eet())
        assert [t.arrival_time for t in w] == [0.0, 1.0]
        assert [t.extras[0][1] for t in w] == ["j3", "j2"]

    def test_time_scale_compresses(self, tmp_path):
        w = self._spec(tmp_path, time_scale=0.5).build_workload(_trace_eet())
        assert [t.arrival_time for t in w] == [0.0, 0.5, 1.0, 4.0]

    def test_quantile_binning_orders_types_by_mean_eet(self, tmp_path):
        spec = self._spec(
            tmp_path,
            columns={"task_id": "job_id", "arrival_time": "submit_us"},
            bin_column="cpus",
        )
        w = spec.build_workload(_trace_eet())
        # T1 (mean EET 1.5) is lighter than T2 (mean 6): the two smallest
        # cpu requests land on T1, the two largest on T2.
        assert [t.task_type.name for t in w] == ["T1", "T1", "T2", "T2"]

    def test_no_type_column_and_no_bin_column_rejected(self, tmp_path):
        spec = self._spec(
            tmp_path,
            columns={"task_id": "job_id", "arrival_time": "submit_us"},
        )
        with pytest.raises(WorkloadError, match="bin_column"):
            spec.build_workload(_trace_eet())

    def test_unknown_type_names_line(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "submit_us,klass\n1000000,T1\n2000000,mystery\n", encoding="utf-8"
        )
        spec = TraceSpec(
            path=str(path),
            columns={"arrival_time": "submit_us", "task_type": "klass"},
            time_unit=1e-6,
        )
        with pytest.raises(WorkloadError, match="line 3.*mystery"):
            spec.build_workload(_trace_eet())

    def test_sampling_is_deterministic_per_replication(self, tmp_path):
        spec = self._spec(tmp_path, sample=0.5)
        first = spec.build_workload(_trace_eet(), seed=11, replication=0)
        again = spec.build_workload(_trace_eet(), seed=11, replication=0)
        assert [t.extras[0][1] for t in first] == [
            t.extras[0][1] for t in again
        ]

    def test_max_tasks_truncates(self, tmp_path):
        spec = self._spec(tmp_path, max_tasks=2)
        w = spec.build_workload(_trace_eet())
        assert len(w) == 2
        assert [t.id for t in w] == [0, 1]

    def test_dict_round_trip(self, tmp_path):
        spec = self._spec(
            tmp_path, sample=0.25, window=(0.5, 9.0), bin_column="cpus"
        )
        assert TraceSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown keys"):
            TraceSpec.from_dict({"path": "x.csv", "subsample": 0.5})

    def test_unknown_column_role_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown roles"):
            TraceSpec(path="x.csv", columns={"arrival": "submit_us"})

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError, match="window"):
            TraceSpec(path="x.csv", window=(5.0, 5.0))

    def test_missing_file_reports_path(self):
        with pytest.raises(WorkloadError, match="no_such_trace.csv"):
            TraceSpec(path="no_such_trace.csv").build_workload(_trace_eet())

    def test_data_scheme_resolves_to_bundled_sample(self):
        path = resolve_trace_path("data:google_cluster_sample.csv")
        assert path.name == "google_cluster_sample.csv"
        assert path.exists()

    def test_describe_reports_span_and_quartiles(self, tmp_path):
        spec = self._spec(tmp_path, bin_column="cpus")
        info = spec.describe()
        assert info["rows"] == 4
        assert info["arrival_min"] == 1.0
        assert info["arrival_max"] == 9.0
        assert info["type_counts"] == {"T1": 2, "T2": 2}
        assert info["bin_quartiles"][0] == 0.1
        assert info["bin_quartiles"][-1] == 0.8
