"""Workload CSV round-trips and error handling (Fig-2 file formats)."""

import io

import pytest

from repro.core.errors import WorkloadError
from repro.tasks.task_type import TaskType
from repro.tasks.trace_io import (
    read_workload_csv,
    workload_from_rows,
    write_workload_csv,
)

CSV_BASIC = """task_id,task_type,arrival_time,deadline
0,T1,0.0,10.0
1,T2,1.5,21.5
2,T1,3.0,13.0
"""

CSV_NO_DEADLINE = """task_id,task_type,arrival_time
0,T1,0.0
1,T2,2.0
"""


class TestRead:
    def test_basic_parse(self):
        w = read_workload_csv(io.StringIO(CSV_BASIC))
        assert len(w) == 3
        assert w[0].task_type.name == "T1"
        assert w[1].deadline == 21.5

    def test_types_inferred_in_first_appearance_order(self):
        w = read_workload_csv(io.StringIO(CSV_BASIC))
        assert [t.name for t in w.task_types] == ["T1", "T2"]
        assert [t.index for t in w.task_types] == [0, 1]

    def test_explicit_task_types_respected(self):
        types = [TaskType("T1", 0), TaskType("T2", 1), TaskType("T3", 2)]
        w = read_workload_csv(io.StringIO(CSV_BASIC), task_types=types)
        assert len(w.task_types) == 3

    def test_unknown_type_with_explicit_universe_rejected(self):
        types = [TaskType("T1", 0)]
        with pytest.raises(WorkloadError):
            read_workload_csv(io.StringIO(CSV_BASIC), task_types=types)

    def test_missing_deadline_uses_default(self):
        w = read_workload_csv(
            io.StringIO(CSV_NO_DEADLINE), default_relative_deadline=5.0
        )
        assert w[0].deadline == 5.0
        assert w[1].deadline == 7.0

    def test_missing_deadline_uses_type_relative(self):
        types = [
            TaskType("T1", 0, relative_deadline=3.0),
            TaskType("T2", 1, relative_deadline=4.0),
        ]
        w = read_workload_csv(io.StringIO(CSV_NO_DEADLINE), task_types=types)
        assert w[0].deadline == 3.0
        assert w[1].deadline == 6.0

    def test_missing_deadline_without_fallback_rejected(self):
        with pytest.raises(WorkloadError):
            read_workload_csv(io.StringIO(CSV_NO_DEADLINE))

    def test_empty_file_rejected(self):
        with pytest.raises(WorkloadError):
            read_workload_csv(io.StringIO(""))

    def test_missing_columns_rejected(self):
        with pytest.raises(WorkloadError):
            read_workload_csv(io.StringIO("task_id,when\n0,1.0\n"))

    def test_bad_number_reports_line(self):
        bad = "task_id,task_type,arrival_time,deadline\n0,T1,abc,1.0\n"
        with pytest.raises(WorkloadError, match="line 2"):
            read_workload_csv(io.StringIO(bad))

    def test_from_path(self, tmp_path):
        path = tmp_path / "workload.csv"
        path.write_text(CSV_BASIC, encoding="utf-8")
        assert len(read_workload_csv(path)) == 3


class TestWrite:
    def test_round_trip(self):
        original = read_workload_csv(io.StringIO(CSV_BASIC))
        text = write_workload_csv(original)
        again = read_workload_csv(io.StringIO(text))
        assert [
            (t.id, t.task_type.name, t.arrival_time, t.deadline)
            for t in again
        ] == [
            (t.id, t.task_type.name, t.arrival_time, t.deadline)
            for t in original
        ]

    def test_write_to_path(self, tmp_path):
        original = read_workload_csv(io.StringIO(CSV_BASIC))
        path = tmp_path / "out.csv"
        write_workload_csv(original, path)
        assert path.read_text(encoding="utf-8").startswith("task_id,")

    def test_write_to_stream(self):
        original = read_workload_csv(io.StringIO(CSV_BASIC))
        buf = io.StringIO()
        write_workload_csv(original, buf)
        assert buf.getvalue().count("\n") == 4  # header + 3 rows


class TestWorkloadFromRows:
    def test_rows_to_workload(self):
        rows = [
            {"task_id": 0, "task_type": "A", "arrival_time": 0.0, "deadline": 5.0},
            {"task_id": 1, "task_type": "B", "arrival_time": 1.0, "deadline": 6.0},
        ]
        w = workload_from_rows(rows)
        assert len(w) == 2
        assert [t.name for t in w.task_types] == ["A", "B"]
