"""Tournament harness: expansion, leaderboard shape, byte-determinism.

The leaderboard is a regression surface: CI archives ``leaderboard.json``
and the same spec must reproduce it byte-for-byte whatever the worker
count — and through the campaign service's result cache, since a cached
tournament must rank exactly like a cold one. These tests pin all three
paths against each other, plus the per-cell seed derivation one drifted
hash away from silently re-seeding every run.
"""

import json

import pytest

from repro.core.errors import ConfigurationError
from repro.core.rng import derive_seed
from repro.experiments import (
    TournamentSpec,
    build_leaderboard,
    leaderboard_json,
    leaderboard_rows_from_csv,
    leaderboard_text,
    run_tournament,
    tournament_campaign,
)
from repro.service import CampaignService

#: Small enough to run three times in one test session, rich enough to
#: exercise grouping (2 gateways) and ranking.
SMALL = TournamentSpec(
    presets=("fed_rebalance",),
    gateways=("LEAST_LOADED", "LOCALITY_FIRST"),
    evictions=("LONGEST_WAIT",),
    repetitions=1,
    seed=7,
)


class TestSpecAndExpansion:
    def test_grid_expands_to_one_cell_per_pairing(self):
        campaign = tournament_campaign(SMALL)
        labels = [ref.effective_label for ref in campaign.scenarios]
        assert labels == [
            "fed_rebalance|LEAST_LOADED|LONGEST_WAIT",
            "fed_rebalance|LOCALITY_FIRST|LONGEST_WAIT",
        ]
        assert campaign.schedulers == ["MM"]
        assert campaign.seeds == [0]
        for ref in campaign.scenarios:
            assert ref.overrides["gateway"] in SMALL.gateways
            assert ref.overrides["migration"] in SMALL.evictions

    def test_empty_axes_resolve_to_every_registered_policy(self):
        from repro.scheduling.federation import (
            available_evictions,
            available_gateways,
        )

        spec = TournamentSpec(presets=("fed_rebalance",))
        assert spec.resolved_gateways() == tuple(available_gateways())
        assert spec.resolved_evictions() == tuple(available_evictions())
        campaign = tournament_campaign(spec)
        assert len(campaign.scenarios) == len(
            available_gateways()
        ) * len(available_evictions())

    def test_per_cell_seed_derivation_pinned(self):
        # One cell's run seed pinned to its literal value: any drift in the
        # label scheme or the derivation chain re-seeds every tournament.
        cells = list(tournament_campaign(SMALL).cells())
        label = "fed_rebalance|LEAST_LOADED|LONGEST_WAIT"
        assert cells[0].label == label
        assert cells[0].run_seed == derive_seed(7, "campaign", label, 0)
        assert cells[0].run_seed == 4144924766
        assert cells[1].run_seed == 2967575429

    def test_campaign_dict_round_trips(self):
        from repro.experiments import CampaignSpec

        campaign = tournament_campaign(SMALL)
        clone = CampaignSpec.from_dict(campaign.to_dict())
        assert [c.run_seed for c in clone.cells()] == [
            c.run_seed for c in campaign.cells()
        ]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TournamentSpec(presets=())
        with pytest.raises(ConfigurationError):
            TournamentSpec(repetitions=0)
        with pytest.raises(ConfigurationError):
            TournamentSpec(seed=-1)
        with pytest.raises(ConfigurationError):
            TournamentSpec(presets=("bad|name",))


class TestLeaderboardDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_tournament(SMALL, parallel=False)

    def test_byte_identical_across_worker_counts(self, serial):
        two = run_tournament(SMALL, workers=2)
        eight = run_tournament(SMALL, workers=8)
        assert serial.to_json() == two.to_json() == eight.to_json()
        assert (
            serial.campaign.to_csv()
            == two.campaign.to_csv()
            == eight.campaign.to_csv()
        )

    def test_leaderboard_structure(self, serial):
        board = serial.leaderboard
        assert board["kind"] == "tournament-leaderboard"
        assert board["grid"]["presets"] == ["fed_rebalance"]
        entries = board["entries"]
        assert [e["rank"] for e in entries] == [1, 2]
        assert {(e["gateway"], e["eviction"]) for e in entries} == {
            ("LEAST_LOADED", "LONGEST_WAIT"),
            ("LOCALITY_FIRST", "LONGEST_WAIT"),
        }
        rates = [e["completion_rate"] for e in entries]
        assert rates == sorted(rates, reverse=True)
        for entry in entries:
            assert entry["cells"] == 1

    def test_json_renders_canonically(self, serial):
        text = serial.to_json()
        assert text.endswith("\n")
        assert json.loads(text) == serial.leaderboard
        assert text == leaderboard_json(serial.leaderboard)

    def test_text_report_lists_every_pairing(self, serial):
        report = leaderboard_text(serial.leaderboard)
        assert report == serial.to_text()
        assert "LEAST_LOADED" in report
        assert "LOCALITY_FIRST" in report
        assert report.splitlines()[0].startswith("rank")

    def test_rows_from_csv_rebuild_the_identical_board(self, serial):
        # The service cache stores the campaign CSV; rebuilding the board
        # from it must reproduce the leaderboard bytes exactly (repr floats
        # round-trip through text).
        rows = leaderboard_rows_from_csv(serial.campaign.to_csv())
        rebuilt = build_leaderboard(SMALL, rows)
        assert leaderboard_json(rebuilt) == serial.to_json()


class TestTournamentThroughTheService:
    def test_cache_hit_matches_cold_run(self, tmp_path):
        """A cached tournament ranks byte-for-byte like a cold one."""
        submission = tournament_campaign(SMALL).to_dict()
        with CampaignService(tmp_path, workers=2) as service:
            cold = service.submit(dict(submission))
            service.wait(cold.job_id, timeout=300)
            cold_payload = service.result(cold.job_id)
            hit = service.submit(dict(submission))
            assert hit.cached
            hit_payload = service.result(hit.job_id)
        assert cold_payload["kind"] == "campaign"
        assert cold_payload["csv"] == hit_payload["csv"]
        cold_board = build_leaderboard(
            SMALL, leaderboard_rows_from_csv(cold_payload["csv"])
        )
        hit_board = build_leaderboard(
            SMALL, leaderboard_rows_from_csv(hit_payload["csv"])
        )
        assert leaderboard_json(cold_board) == leaderboard_json(hit_board)
        # ... and both match running the tournament in-process.
        direct = run_tournament(SMALL, parallel=False)
        assert leaderboard_json(cold_board) == direct.to_json()
