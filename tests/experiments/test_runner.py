"""Campaign runner: determinism across execution modes, table integrity."""

import pytest

from repro.core.errors import ConfigurationError
from repro.experiments import CampaignRunner, CampaignSpec, run_campaign
from repro.experiments.runner import IDENTITY_COLUMNS


@pytest.fixture(scope="module")
def spec():
    # Short durations keep the 12-cell grid fast while still exercising
    # every scenario family and both scheduling modes.
    return CampaignSpec(
        name="runner_unit",
        scenarios=[
            {"name": "classroom_homogeneous", "overrides": {"duration": 60.0}},
            {"name": "edge_ai", "overrides": {"duration": 60.0}},
        ],
        schedulers=["FCFS", "MECT", "MM"],
        seeds=[1, 2],
        seed=11,
    )


@pytest.fixture(scope="module")
def serial_result(spec):
    return run_campaign(spec, parallel=False)


class TestDeterminism:
    def test_parallel_table_identical_to_serial(self, spec, serial_result):
        parallel = run_campaign(spec, workers=4)
        assert parallel.to_csv() == serial_result.to_csv()

    def test_rerun_is_reproducible(self, spec, serial_result):
        assert run_campaign(spec, parallel=False).to_csv() == (
            serial_result.to_csv()
        )

    def test_single_worker_pool_matches(self, spec, serial_result):
        one = CampaignRunner(spec, workers=1).run(parallel=True)
        assert one.to_csv() == serial_result.to_csv()

    @pytest.mark.parametrize("workers", [2, 8])
    def test_record_for_record_across_worker_counts(
        self, spec, serial_result, workers
    ):
        """Worker count must never leak into results, record for record.

        Per-run seeds derive from (campaign seed, scenario label, grid seed)
        alone — pool size and completion order are not inputs — so the full
        row set (identity columns, derived ``run_seed``, every metric) from
        an N-worker pool is the serial table, exactly.
        """
        pooled = run_campaign(spec, workers=workers)
        assert [r.row() for r in pooled.records] == [
            r.row() for r in serial_result.records
        ]

    def test_run_seeds_are_pinned(self, spec, serial_result):
        """The derived per-run seeds are a pure function of the spec.

        Pinned values guard the derivation itself: a refactor that slips
        worker ids, timestamps, or scheduling order into ``derive_seed``
        would silently fork the cache identity of every campaign, so the
        exact (cell → run_seed) map for this spec is frozen here.
        """
        from repro.core.rng import derive_seed

        for cell, record in zip(spec.cells(), serial_result.records):
            expected = derive_seed(
                spec.seed, "campaign", cell.label, cell.seed
            )
            assert record.run_seed == expected == cell.run_seed


class TestResult:
    def test_records_in_grid_order(self, spec, serial_result):
        assert [
            (r.scenario, r.scheduler, r.seed)
            for r in serial_result.records
        ] == [c.key() for c in spec.cells()]

    def test_table_rows_and_columns(self, serial_result):
        rows = serial_result.table()
        assert len(rows) == 12
        columns = serial_result.columns()
        assert columns[: len(IDENTITY_COLUMNS)] == list(IDENTITY_COLUMNS)
        for row in rows:
            assert 0.0 <= row["completion_rate"] <= 1.0

    def test_csv_written_to_disk(self, serial_result, tmp_path):
        path = tmp_path / "table.csv"
        text = serial_result.to_csv(path)
        assert path.read_text(encoding="utf-8") == text
        assert text.splitlines()[0].startswith("scenario,scheduler,seed")

    def test_paired_workloads_same_total_tasks(self, serial_result):
        """Every policy must face the identical workload per (scenario, seed)."""
        totals = {}
        for record in serial_result.records:
            key = (record.scenario, record.seed)
            totals.setdefault(key, set()).add(record.summary.total_tasks)
        assert all(len(counts) == 1 for counts in totals.values())

    def test_comparison_per_scenario(self, serial_result):
        comparison = serial_result.comparison("edge_ai")
        assert set(comparison.labels) == {"FCFS", "MECT", "MM"}
        ranked = comparison.ranking("completion_rate")
        assert len(ranked) == 3
        winner = comparison.winner("completion_rate")
        assert winner in {"FCFS", "MECT", "MM"}

    def test_comparison_unknown_scenario(self, serial_result):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            serial_result.comparison("nope")

    def test_to_text_mentions_every_policy_and_scenario(self, serial_result):
        text = serial_result.to_text()
        for token in (
            "classroom_homogeneous", "edge_ai", "FCFS", "MECT", "MM",
            "completion_rate",
        ):
            assert token in text


class TestRunner:
    def test_invalid_worker_count(self, spec):
        with pytest.raises(ConfigurationError):
            CampaignRunner(spec, workers=0)

    def test_effective_workers_capped_by_grid(self, spec):
        runner = CampaignRunner(spec, workers=64)
        assert runner.effective_workers(4) == 4
