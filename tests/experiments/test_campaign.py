"""Campaign specs: grid expansion, seed derivation, dict/JSON round-trip."""

import pytest

from repro.core.errors import (
    ConfigurationError,
    UnknownScenarioError,
    UnknownSchedulerError,
)
from repro.experiments import CampaignSpec, ScenarioRef


@pytest.fixture
def spec():
    return CampaignSpec(
        name="unit",
        scenarios=[
            "classroom_homogeneous",
            {"name": "edge_ai", "overrides": {"duration": 60.0}},
        ],
        schedulers=["FCFS", "MECT"],
        seeds=[1, 2, 3],
        seed=42,
    )


class TestSpec:
    def test_grid_size(self, spec):
        assert spec.n_runs == 2 * 2 * 3
        assert len(spec.cells()) == 12

    def test_cells_are_scenario_major_and_deterministic(self, spec):
        cells = spec.cells()
        assert [c.key() for c in cells] == [c.key() for c in spec.cells()]
        assert cells[0].label == "classroom_homogeneous"
        assert cells[-1].label == "edge_ai"

    def test_same_workload_seed_across_schedulers(self, spec):
        """Paired comparisons: the scheduler must not perturb the run seed."""
        by_key = {c.key(): c for c in spec.cells()}
        for label in ("classroom_homogeneous", "edge_ai"):
            for seed in (1, 2, 3):
                assert (
                    by_key[(label, "FCFS", seed)].run_seed
                    == by_key[(label, "MECT", seed)].run_seed
                )

    def test_run_seeds_differ_across_scenarios_and_seeds(self, spec):
        seeds = {c.run_seed for c in spec.cells()}
        assert len(seeds) == 2 * 3  # one per (scenario, grid seed) pair

    def test_campaign_seed_changes_run_seeds(self, spec):
        other = CampaignSpec.from_dict({**spec.to_dict(), "seed": 43})
        assert [c.run_seed for c in other.cells()] != [
            c.run_seed for c in spec.cells()
        ]

    def test_scenario_ref_coercion(self):
        ref = ScenarioRef.coerce("edge_ai")
        assert ref.name == "edge_ai" and ref.effective_label == "edge_ai"
        ref = ScenarioRef.coerce(
            {"name": "edge_ai", "overrides": {"duration": 9.0}, "label": "ea"}
        )
        assert ref.effective_label == "ea"
        assert ScenarioRef.coerce(ref) is ref

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            CampaignSpec(
                scenarios=["edge_ai", {"name": "edge_ai"}],
                schedulers=["FCFS"],
            )

    def test_distinct_labels_allow_same_preset_twice(self):
        spec = CampaignSpec(
            scenarios=[
                {"name": "edge_ai", "label": "ea_low",
                 "overrides": {"intensity": "low"}},
                {"name": "edge_ai", "label": "ea_high",
                 "overrides": {"intensity": "high"}},
            ],
            schedulers=["FCFS"],
        )
        assert [r.effective_label for r in spec.scenarios] == [
            "ea_low", "ea_high"
        ]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(UnknownScenarioError):
            CampaignSpec(scenarios=["no_such"], schedulers=["FCFS"])

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(UnknownSchedulerError):
            CampaignSpec(scenarios=["edge_ai"], schedulers=["NOPE"])

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(scenarios=[], schedulers=["FCFS"])
        with pytest.raises(ConfigurationError):
            CampaignSpec(scenarios=["edge_ai"], schedulers=[])
        with pytest.raises(ConfigurationError):
            CampaignSpec(scenarios=["edge_ai"], schedulers=["FCFS"], seeds=[])

    def test_scheduler_params_for_missing_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="scheduler_params"):
            CampaignSpec(
                scenarios=["edge_ai"],
                schedulers=["FCFS"],
                scheduler_params={"KPB": {"k": 50}},
            )


class TestRoundTrip:
    def test_dict_round_trip_preserves_cells(self, spec):
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()
        assert clone.cells() == spec.cells()

    def test_json_file_round_trip(self, spec, tmp_path):
        path = tmp_path / "campaign.json"
        spec.to_json(path)
        clone = CampaignSpec.from_json(path)
        assert clone.cells() == spec.cells()

    def test_json_string_round_trip(self, spec):
        clone = CampaignSpec.from_json(spec.to_json())
        assert clone.cells() == spec.cells()

    def test_missing_required_key_is_a_config_error(self):
        with pytest.raises(ConfigurationError, match="schedulers"):
            CampaignSpec.from_dict({"scenarios": ["edge_ai"]})

    def test_scenario_ref_without_name_is_a_config_error(self):
        with pytest.raises(ConfigurationError, match="needs a 'name'"):
            CampaignSpec.from_dict(
                {"scenarios": [{"overrides": {}}], "schedulers": ["FCFS"]}
            )

    def test_non_integer_seeds_are_a_config_error(self):
        with pytest.raises(ConfigurationError, match="integers"):
            CampaignSpec.from_dict(
                {
                    "scenarios": ["edge_ai"],
                    "schedulers": ["FCFS"],
                    "seeds": ["x"],
                }
            )

    def test_non_json_spec_is_a_config_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json{", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            CampaignSpec.from_json(path)
        with pytest.raises(ConfigurationError, match="cannot read"):
            CampaignSpec.from_json(tmp_path / "missing.json")

    def test_non_object_spec_json_is_a_config_error(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[]", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="JSON object"):
            CampaignSpec.from_json(path)

    def test_negative_seeds_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            CampaignSpec(
                scenarios=["edge_ai"], schedulers=["FCFS"], seeds=[-1]
            )
        with pytest.raises(ConfigurationError, match="non-negative"):
            CampaignSpec(
                scenarios=["edge_ai"], schedulers=["FCFS"], seed=-5
            )

    def test_override_typo_rejected_up_front(self):
        with pytest.raises(ConfigurationError, match="invalid overrides"):
            CampaignSpec(
                scenarios=[{"name": "edge_ai", "overrides": {"duratoin": 9}}],
                schedulers=["FCFS"],
            )

    def test_scheduler_names_canonicalised(self):
        spec = CampaignSpec(
            scenarios=["edge_ai"],
            schedulers=["fcfs", "mect"],
            scheduler_params={"mect": {}},
        )
        assert spec.schedulers == ["FCFS", "MECT"]
        assert set(spec.scheduler_params) == {"MECT"}
