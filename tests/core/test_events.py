"""Event taxonomy: ordering, priorities, tie-breaks."""

import pytest

from repro.core.events import EVENT_PRIORITY, Event, EventType


class TestEventOrdering:
    def test_earlier_time_fires_first(self):
        early = Event(1.0, EventType.TASK_ARRIVAL)
        late = Event(2.0, EventType.TASK_ARRIVAL)
        assert early < late

    def test_completion_beats_deadline_at_same_time(self):
        """A task completing exactly at its deadline is on time."""
        completion = Event(5.0, EventType.TASK_COMPLETION)
        deadline = Event(5.0, EventType.TASK_DEADLINE)
        assert completion < deadline

    def test_completion_beats_arrival_at_same_time(self):
        completion = Event(5.0, EventType.TASK_COMPLETION)
        arrival = Event(5.0, EventType.TASK_ARRIVAL)
        assert completion < arrival

    def test_arrival_beats_deadline_at_same_time(self):
        arrival = Event(5.0, EventType.TASK_ARRIVAL)
        deadline = Event(5.0, EventType.TASK_DEADLINE)
        assert arrival < deadline

    def test_delivery_between_completion_and_arrival(self):
        completion = Event(5.0, EventType.TASK_COMPLETION)
        delivery = Event(5.0, EventType.NETWORK_DELIVERY)
        arrival = Event(5.0, EventType.TASK_ARRIVAL)
        assert completion < delivery < arrival

    def test_control_fires_last(self):
        control = Event(5.0, EventType.CONTROL)
        for kind in EventType:
            if kind is EventType.CONTROL:
                continue
            assert Event(5.0, kind) < control

    def test_fifo_stability_for_identical_kind_and_time(self):
        first = Event(3.0, EventType.TASK_ARRIVAL, payload="a")
        second = Event(3.0, EventType.TASK_ARRIVAL, payload="b")
        assert first < second  # seq counter is monotonic

    def test_time_dominates_priority(self):
        deadline_early = Event(1.0, EventType.TASK_DEADLINE)
        completion_late = Event(2.0, EventType.TASK_COMPLETION)
        assert deadline_early < completion_late


class TestEventStructure:
    def test_priority_property_matches_table(self):
        for kind in EventType:
            assert Event(0.0, kind).priority == EVENT_PRIORITY[kind]

    def test_sort_key_shape(self):
        event = Event(1.5, EventType.TASK_ARRIVAL)
        key = event.sort_key()
        assert key[0] == 1.5
        assert key[1] == EVENT_PRIORITY[EventType.TASK_ARRIVAL]

    def test_payload_carried_verbatim(self):
        sentinel = object()
        assert Event(0.0, EventType.CONTROL, sentinel).payload is sentinel

    def test_events_are_frozen(self):
        event = Event(0.0, EventType.CONTROL)
        with pytest.raises(AttributeError):
            event.time = 1.0  # type: ignore[misc]

    def test_every_event_type_has_priority(self):
        assert set(EVENT_PRIORITY) == set(EventType)


class TestEventCopySemantics:
    def test_pickle_round_trip(self):
        import pickle

        event = Event(2.5, EventType.TASK_DEADLINE, payload={"k": 1})
        clone = pickle.loads(pickle.dumps(event))
        assert clone.time == event.time
        assert clone.type is event.type
        assert clone.payload == event.payload
        assert clone.seq == event.seq
        assert clone.sort_key() == event.sort_key()

    def test_deepcopy(self):
        import copy

        event = Event(1.0, EventType.TASK_ARRIVAL)
        clone = copy.deepcopy(event)
        assert clone.sort_key() == event.sort_key()
