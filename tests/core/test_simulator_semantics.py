"""Paper semantics: deadlines, cancellation, dropping, timing exactness.

Every test here is a hand-computed micro-trace: one or two machines with
integer EETs, so assertion values are exact.
"""

import numpy as np

from repro.core.simulator import Simulator
from repro.machines.cluster import Cluster
from repro.machines.eet import EETMatrix
from repro.scheduling.registry import create_scheduler
from repro.tasks.task import DropStage, Task, TaskStatus
from repro.tasks.task_type import TaskType
from repro.tasks.workload import Workload


def single_machine_setup(eet_value=10.0):
    """One task type, one machine, EET = eet_value."""
    task_type = TaskType("T", 0)
    eet = EETMatrix(np.array([[eet_value]]), [task_type], ["M"])
    return task_type, eet


def run_tasks(eet, task_type, specs, scheduler="FCFS", **kwargs):
    """specs: list of (arrival, deadline). Returns tasks after the run."""
    tasks = [
        Task(id=i, task_type=task_type, arrival_time=a, deadline=d)
        for i, (a, d) in enumerate(specs)
    ]
    workload = Workload(task_types=[task_type], tasks=tasks)
    cluster = Cluster.build(eet, {"M": 1})
    sim = Simulator(
        cluster=cluster,
        workload=workload,
        scheduler=create_scheduler(scheduler),
        **kwargs,
    )
    sim.run()
    return {t.id: t for t in tasks}, sim


class TestSequentialExecution:
    def test_single_task_timing(self):
        task_type, eet = single_machine_setup(10.0)
        tasks, _ = run_tasks(eet, task_type, [(0.0, 100.0)])
        t = tasks[0]
        assert t.status is TaskStatus.COMPLETED
        assert t.start_time == 0.0
        assert t.completion_time == 10.0
        assert t.response_time == 10.0
        assert t.wait_time == 0.0

    def test_fifo_queueing(self):
        task_type, eet = single_machine_setup(10.0)
        tasks, _ = run_tasks(eet, task_type, [(0.0, 100.0), (0.0, 100.0)])
        assert tasks[0].completion_time == 10.0
        assert tasks[1].start_time == 10.0
        assert tasks[1].completion_time == 20.0
        assert tasks[1].wait_time == 10.0

    def test_idle_gap_between_tasks(self):
        task_type, eet = single_machine_setup(5.0)
        tasks, _ = run_tasks(eet, task_type, [(0.0, 100.0), (20.0, 100.0)])
        assert tasks[0].completion_time == 5.0
        assert tasks[1].start_time == 20.0  # machine idled 5..20
        assert tasks[1].completion_time == 25.0


class TestDeadlineSemantics:
    def test_completion_exactly_at_deadline_is_on_time(self):
        task_type, eet = single_machine_setup(10.0)
        tasks, _ = run_tasks(eet, task_type, [(0.0, 10.0)])
        t = tasks[0]
        assert t.status is TaskStatus.COMPLETED
        assert t.on_time

    def test_running_task_dropped_at_deadline(self):
        task_type, eet = single_machine_setup(10.0)
        tasks, _ = run_tasks(eet, task_type, [(0.0, 6.0)])
        t = tasks[0]
        assert t.status is TaskStatus.MISSED
        assert t.drop_stage is DropStage.EXECUTING
        assert t.missed_time == 6.0
        assert t.completion_time is None

    def test_drop_frees_machine_for_next_task(self):
        task_type, eet = single_machine_setup(10.0)
        # Task 0 would run 0..10 but is dropped at 6; task 1 then runs 6..16.
        tasks, _ = run_tasks(eet, task_type, [(0.0, 6.0), (0.0, 100.0)])
        assert tasks[0].status is TaskStatus.MISSED
        assert tasks[1].start_time == 6.0
        assert tasks[1].completion_time == 16.0

    def test_queued_task_dropped_at_deadline(self):
        task_type, eet = single_machine_setup(10.0)
        # Task 1 queues behind task 0 (busy 0..10) and its deadline 8 fires
        # while it waits in the machine queue (immediate mode maps on arrival).
        tasks, _ = run_tasks(eet, task_type, [(0.0, 100.0), (0.0, 8.0)])
        t = tasks[1]
        assert t.status is TaskStatus.MISSED
        assert t.drop_stage is DropStage.MACHINE_QUEUE
        assert t.start_time is None
        assert t.missed_time == 8.0

    def test_batch_mode_cancellation_before_assignment(self):
        task_type, eet = single_machine_setup(10.0)
        # Batch mode, queue capacity 0 is invalid for progress; use capacity 1:
        # task 0 runs 0..10; task 1 occupies the single queue slot; task 2
        # stays in the batch queue and expires at t=5 -> CANCELLED.
        tasks, _ = run_tasks(
            eet,
            task_type,
            [(0.0, 100.0), (0.0, 100.0), (0.0, 5.0)],
            scheduler="MM",
            queue_capacity=1,
        )
        # MM maps the earliest-finishing first: tasks 0 and 1 get mapped
        # (machine + one queue slot); task 2 cannot be mapped and expires.
        statuses = {i: t.status for i, t in tasks.items()}
        assert statuses[2] is TaskStatus.CANCELLED
        assert tasks[2].cancelled_time == 5.0
        assert tasks[2].machine is None

    def test_cancelled_never_touches_a_machine(self):
        task_type, eet = single_machine_setup(10.0)
        tasks, sim = run_tasks(
            eet,
            task_type,
            [(0.0, 100.0), (0.0, 100.0), (0.0, 5.0)],
            scheduler="MM",
            queue_capacity=1,
        )
        machine = sim.cluster[0]
        # cancelled task is not in the machine's counters
        assert machine.completed_count == 2
        assert machine.missed_count == 0

    def test_drop_on_deadline_false_lets_tasks_finish_late(self):
        task_type, eet = single_machine_setup(10.0)
        tasks, _ = run_tasks(
            eet, task_type, [(0.0, 6.0)], drop_on_deadline=False
        )
        t = tasks[0]
        assert t.status is TaskStatus.COMPLETED
        assert t.completion_time == 10.0
        assert not t.on_time

    def test_infinite_deadline_never_dropped(self):
        task_type, eet = single_machine_setup(10.0)
        tasks, _ = run_tasks(eet, task_type, [(0.0, float("inf"))])
        assert tasks[0].status is TaskStatus.COMPLETED


class TestConservation:
    def test_all_outcomes_sum_to_total(self):
        task_type, eet = single_machine_setup(10.0)
        specs = [(float(i), float(i) + 12.0) for i in range(10)]
        _, sim = run_tasks(eet, task_type, specs)
        summary = sim.result().summary
        assert (
            summary.completed + summary.cancelled + summary.missed
            == summary.total_tasks
            == 10
        )

    def test_completed_equals_on_time_in_drop_mode(self):
        task_type, eet = single_machine_setup(7.0)
        specs = [(float(2 * i), float(2 * i) + 9.0) for i in range(8)]
        _, sim = run_tasks(eet, task_type, specs)
        summary = sim.result().summary
        assert summary.completed == summary.on_time


class TestHeterogeneousMapping:
    def test_mect_uses_load_and_eet(self, eet_3x2, make_workload):
        """Two T1 tasks at t=0: first to fast M1 (EET 4); the second's options
        are M1 busy-until-4 + 4 = 8 vs idle M2 = 10, so both go to M1."""
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        workload = make_workload([(0, 0.0, 100.0), (0, 0.0, 100.0)])
        sim = Simulator(
            cluster=cluster,
            workload=workload,
            scheduler=create_scheduler("MECT"),
        )
        sim.run()
        machines = {t.id: t.machine.name for t in workload}
        assert machines == {0: "M1-0", 1: "M1-1"} or machines == {
            0: "M1-0",
            1: "M1-0",
        }
        # exactly: single M1 instance named 'M1-0'
        assert machines[0] == "M1-0" and machines[1] == "M1-0"

    def test_mect_overflows_to_slower_machine(self, eet_3x2, make_workload):
        """Three T1 tasks at t=0: third sees M1 at 8+4=12 vs M2 at 10 -> M2."""
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        workload = make_workload(
            [(0, 0.0, 100.0), (0, 0.0, 100.0), (0, 0.0, 100.0)]
        )
        sim = Simulator(
            cluster=cluster,
            workload=workload,
            scheduler=create_scheduler("MECT"),
        )
        sim.run()
        assert workload[2].machine.name == "M2-1"
        assert workload[2].completion_time == 10.0
