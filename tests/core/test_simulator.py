"""Engine mechanics: stepping, running, results, observers."""

import pytest

from repro.core.errors import ConfigurationError, SimulationStateError
from repro.core.events import EventType
from repro.core.simulator import Simulator
from repro.machines.cluster import Cluster
from repro.scheduling.registry import create_scheduler


def build_sim(eet, make_workload, triples, scheduler="MECT", **kwargs):
    cluster = Cluster.build(eet, {n: 1 for n in eet.machine_type_names})
    return Simulator(
        cluster=cluster,
        workload=make_workload(triples),
        scheduler=create_scheduler(scheduler),
        **kwargs,
    )


class TestStepping:
    def test_step_processes_one_event(self, eet_3x2, make_workload):
        sim = build_sim(eet_3x2, make_workload, [(0, 0.0, 100.0)])
        event = sim.step()
        assert event is not None
        assert event.type is EventType.TASK_ARRIVAL
        assert sim.events_processed == 1

    def test_step_after_finish_returns_none(self, eet_3x2, make_workload):
        sim = build_sim(eet_3x2, make_workload, [(0, 0.0, 100.0)])
        sim.run()
        assert sim.step() is None

    def test_clock_follows_events(self, eet_3x2, make_workload):
        sim = build_sim(eet_3x2, make_workload, [(0, 2.5, 100.0)])
        sim.step()
        assert sim.now == 2.5

    def test_empty_workload_finishes_immediately(self, eet_3x2, task_types):
        from repro.tasks.workload import Workload

        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        sim = Simulator(
            cluster=cluster,
            workload=Workload(task_types=task_types, tasks=[]),
            scheduler=create_scheduler("MECT"),
        )
        result = sim.run()
        assert result.summary.total_tasks == 0
        assert sim.is_finished

    def test_next_event_time(self, eet_3x2, make_workload):
        sim = build_sim(eet_3x2, make_workload, [(0, 1.0, 100.0)])
        assert sim.next_event_time() == 1.0


class TestRun:
    def test_run_completes_all_feasible_tasks(self, eet_3x2, make_workload):
        sim = build_sim(
            eet_3x2,
            make_workload,
            [(0, 0.0, 100.0), (1, 1.0, 100.0), (2, 2.0, 100.0)],
        )
        result = sim.run()
        assert result.summary.completed == 3
        assert result.summary.completion_rate == 1.0

    def test_run_until_partial(self, eet_3x2, make_workload):
        sim = build_sim(
            eet_3x2, make_workload, [(0, 0.0, 100.0), (0, 50.0, 200.0)]
        )
        partial = sim.run(until=10.0)
        assert not sim.is_finished
        assert partial.summary.completed == 1
        full = sim.run()
        assert full.summary.completed == 2

    def test_result_before_finish_raises(self, eet_3x2, make_workload):
        sim = build_sim(eet_3x2, make_workload, [(0, 0.0, 100.0)])
        with pytest.raises(SimulationStateError):
            sim.result()

    def test_result_after_run(self, eet_3x2, make_workload):
        sim = build_sim(eet_3x2, make_workload, [(0, 0.0, 100.0)])
        result = sim.run()
        assert sim.result() is result

    def test_events_processed_counted(self, eet_3x2, make_workload):
        sim = build_sim(eet_3x2, make_workload, [(0, 0.0, 100.0)])
        result = sim.run()
        # 1 arrival + 1 completion + 1 deadline (fires post-completion, no-op)
        assert result.events_processed == 3


class TestObservers:
    def test_observer_sees_every_event(self, eet_3x2, make_workload):
        seen = []
        sim = build_sim(
            eet_3x2,
            make_workload,
            [(0, 0.0, 100.0)],
            observers=[lambda s, e: seen.append(e.type)],
        )
        sim.run()
        assert EventType.TASK_ARRIVAL in seen
        assert EventType.TASK_COMPLETION in seen


class TestConfigurationGuards:
    def test_immediate_with_bounded_queue_rejected(self, eet_3x2, make_workload):
        with pytest.raises(ConfigurationError):
            build_sim(
                eet_3x2,
                make_workload,
                [(0, 0.0, 100.0)],
                scheduler="MECT",
                queue_capacity=3,
            )

    def test_batch_with_bounded_queue_allowed(self, eet_3x2, make_workload):
        sim = build_sim(
            eet_3x2,
            make_workload,
            [(0, 0.0, 100.0)],
            scheduler="MM",
            queue_capacity=2,
        )
        result = sim.run()
        assert result.summary.completed == 1

    def test_workload_must_match_eet(self, eet_3x2):
        from repro.core.errors import IncompatibleWorkloadError
        from repro.tasks.task import Task
        from repro.tasks.task_type import TaskType
        from repro.tasks.workload import Workload

        alien = TaskType("ALIEN", 0)
        workload = Workload(
            task_types=[alien],
            tasks=[Task(id=0, task_type=alien, arrival_time=0.0, deadline=1.0)],
        )
        cluster = Cluster.build(eet_3x2, {"M1": 1, "M2": 1})
        with pytest.raises(IncompatibleWorkloadError):
            Simulator(
                cluster=cluster,
                workload=workload,
                scheduler=create_scheduler("MECT"),
            )


class TestCountsView:
    def test_counts_track_outcomes(self, eet_3x2, make_workload):
        sim = build_sim(
            eet_3x2, make_workload, [(0, 0.0, 100.0), (1, 0.0, 100.0)]
        )
        sim.run()
        counts = sim.counts()
        assert counts == {"completed": 2, "cancelled": 0, "missed": 0}

    def test_remaining_arrivals_decreases(self, eet_3x2, make_workload):
        sim = build_sim(
            eet_3x2, make_workload, [(0, 0.0, 100.0), (1, 50.0, 200.0)]
        )
        assert sim.remaining_arrivals() == 2
        sim.step()
        assert sim.remaining_arrivals() == 1
