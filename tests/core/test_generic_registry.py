"""The generic NameRegistry both plug-in registries are instances of."""

import pytest

from repro.core.errors import ConfigurationError, UnknownSchedulerError
from repro.core.registry import NameRegistry


class Base:
    name = ""


def make_registry(**kwargs):
    defaults = dict(kind="widget", not_found_error=UnknownSchedulerError)
    defaults.update(kwargs)
    return NameRegistry(**defaults)


class TestNameRegistry:
    def test_register_resolve_create(self):
        registry = make_registry()

        @registry.register(aliases=("ALT",))
        class Widget(Base):
            name = "W1"

            def __init__(self, *, knob=0):
                self.knob = knob

        assert registry.resolve("w1") is Widget
        assert registry.resolve("alt") is Widget
        assert registry.create("W1", knob=3).knob == 3
        assert registry.names() == ["W1"]

    def test_unknown_name_uses_configured_error_and_kind(self):
        registry = make_registry(kind="widget", kind_full="widget policy")
        with pytest.raises(UnknownSchedulerError, match="widget policy"):
            registry.resolve("NOPE")

    def test_bad_parameters_wrapped(self):
        registry = make_registry()

        @registry.register
        class Widget(Base):
            name = "W2"

        with pytest.raises(ConfigurationError, match="bad parameters"):
            registry.create("W2", bogus=1)

    def test_duplicate_name_rejected_but_reregistration_idempotent(self):
        registry = make_registry()

        @registry.register
        class Widget(Base):
            name = "W3"

        registry.register(Widget)  # same class again: fine

        with pytest.raises(ConfigurationError, match="already registered"):

            @registry.register
            class Impostor(Base):
                name = "W3"

    def test_custom_canonicaliser(self):
        registry = make_registry(
            canonicalise=lambda n: n.upper().replace("-", "_")
        )

        @registry.register
        class Widget(Base):
            name = "TWO_PART"

        assert registry.resolve("two-part") is Widget

    def test_alias_collision_with_name_rejected(self):
        registry = make_registry()

        @registry.register
        class Widget(Base):
            name = "W4"

        with pytest.raises(ConfigurationError, match="collides"):

            @registry.register(aliases=("W4",))
            class Other(Base):
                name = "W5"

    def test_alias_retarget_rejected(self):
        registry = make_registry()

        @registry.register(aliases=("SHARED",))
        class Widget(Base):
            name = "W6"

        with pytest.raises(ConfigurationError, match="already points"):

            @registry.register(aliases=("SHARED",))
            class Other(Base):
                name = "W7"

    def test_nameless_rejected(self):
        registry = make_registry()
        with pytest.raises(ConfigurationError, match="non-empty"):

            @registry.register
            class Nameless(Base):
                name = ""

    def test_predicate_filter(self):
        registry = make_registry()

        @registry.register
        class A(Base):
            name = "A"
            flavour = "x"

        @registry.register
        class B(Base):
            name = "B"
            flavour = "y"

        assert registry.names(lambda k: k.flavour == "y") == ["B"]


class TestBothRegistriesShareTheImplementation:
    def test_scheduler_and_gateway_registries_are_namereg_instances(self):
        import repro.scheduling.federation.registry as gateway_registry
        import repro.scheduling.registry as scheduler_registry

        assert isinstance(scheduler_registry._REGISTRY, NameRegistry)
        assert isinstance(gateway_registry._REGISTRY, NameRegistry)

    def test_gateway_error_wording_preserved(self):
        from repro.core.errors import UnknownGatewayError
        from repro.scheduling.federation.registry import gateway_class

        with pytest.raises(UnknownGatewayError, match="gateway policy"):
            gateway_class("NOPE")
