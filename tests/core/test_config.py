"""Scenario configuration: validation, builders, JSON round-trips."""

import pytest

from repro.core.config import Scenario
from repro.core.errors import ConfigurationError
from repro.machines.machine_queue import UNBOUNDED
from repro.machines.power import PowerProfile


class TestValidation:
    def test_needs_workload_or_generator(self, eet_3x2):
        with pytest.raises(ConfigurationError):
            Scenario(
                eet=eet_3x2, machine_counts={"M1": 1}, scheduler="MECT"
            )

    def test_workload_and_generator_exclusive(
        self, eet_3x2, make_workload
    ):
        with pytest.raises(ConfigurationError):
            Scenario(
                eet=eet_3x2,
                machine_counts={"M1": 1},
                scheduler="MECT",
                workload=make_workload([(0, 0.0, 10.0)]),
                generator={"duration": 10.0},
            )

    def test_unknown_machine_type_rejected(self, eet_3x2):
        with pytest.raises(ConfigurationError):
            Scenario(
                eet=eet_3x2,
                machine_counts={"NOPE": 1},
                scheduler="MECT",
                generator={"duration": 10.0},
            )


class TestBuilders:
    def test_build_cluster(self, scenario_factory):
        cluster = scenario_factory().build_cluster()
        assert len(cluster) == 2

    def test_build_workload_deterministic(self, scenario_factory):
        scenario = scenario_factory()
        a = scenario.build_workload()
        b = scenario.build_workload()
        assert [(t.arrival_time, t.task_type.name) for t in a] == [
            (t.arrival_time, t.task_type.name) for t in b
        ]

    def test_replications_draw_different_workloads(self, scenario_factory):
        scenario = scenario_factory()
        a = scenario.build_workload(replication=0)
        b = scenario.build_workload(replication=1)
        assert [t.arrival_time for t in a] != [t.arrival_time for t in b]

    def test_explicit_workload_fresh_copies(self, eet_3x2, make_workload):
        workload = make_workload([(0, 0.0, 50.0)])
        scenario = Scenario(
            eet=eet_3x2,
            machine_counts={"M1": 1, "M2": 1},
            scheduler="MECT",
            workload=workload,
        )
        built = scenario.build_workload()
        assert built[0] is not workload[0]

    def test_generator_needs_duration_or_count(self, eet_3x2):
        scenario = Scenario(
            eet=eet_3x2,
            machine_counts={"M1": 1, "M2": 1},
            scheduler="MECT",
            generator={"intensity": "low"},
        )
        with pytest.raises(ConfigurationError):
            scenario.build_workload()

    def test_generator_n_tasks(self, eet_3x2):
        scenario = Scenario(
            eet=eet_3x2,
            machine_counts={"M1": 1, "M2": 1},
            scheduler="MECT",
            generator={"n_tasks": 17},
            seed=1,
        )
        assert len(scenario.build_workload()) == 17

    def test_immediate_mode_forces_unbounded(self, scenario_factory):
        scenario = scenario_factory("MECT", queue_capacity=3)
        sim = scenario.build_simulator()
        assert all(m.queue.capacity == UNBOUNDED for m in sim.cluster)

    def test_batch_mode_uses_capacity(self, scenario_factory):
        scenario = scenario_factory("MM", queue_capacity=3)
        sim = scenario.build_simulator()
        assert all(m.queue.capacity == 3 for m in sim.cluster)


class TestRun:
    def test_run_produces_result(self, scenario_factory):
        result = scenario_factory().run()
        assert result.summary.total_tasks > 0

    def test_run_replications(self, scenario_factory):
        results = scenario_factory().run_replications(3)
        assert len(results) == 3
        totals = {r.summary.total_tasks for r in results}
        assert len(totals) > 1  # independent workload draws

    def test_zero_replications_rejected(self, scenario_factory):
        with pytest.raises(ConfigurationError):
            scenario_factory().run_replications(0)


class TestJSON:
    def test_round_trip_generator_scenario(self, scenario_factory):
        scenario = scenario_factory("MM", queue_capacity=2)
        clone = Scenario.from_json(scenario.to_json())
        assert clone.scheduler == "MM"
        assert clone.queue_capacity == 2
        assert clone.run().summary.as_dict() == scenario.run().summary.as_dict()

    def test_round_trip_explicit_workload(self, eet_3x2, make_workload):
        scenario = Scenario(
            eet=eet_3x2,
            machine_counts={"M1": 1, "M2": 1},
            scheduler="MECT",
            workload=make_workload([(0, 0.0, 50.0), (1, 1.0, 51.0)]),
            power_profiles={"M1": PowerProfile(idle_watts=4.0, busy_watts=9.0)},
            seed=5,
        )
        clone = Scenario.from_json(scenario.to_json())
        assert len(clone.workload) == 2
        assert clone.power_profiles["M1"].idle_watts == 4.0
        assert (
            clone.run().summary.as_dict() == scenario.run().summary.as_dict()
        )

    def test_json_file_round_trip(self, scenario_factory, tmp_path):
        scenario = scenario_factory()
        path = tmp_path / "scenario.json"
        scenario.to_json(path)
        clone = Scenario.from_json(path)
        assert clone.name == scenario.name

    def test_unbounded_capacity_serialises_as_null(self, scenario_factory):
        import json

        data = json.loads(scenario_factory().to_json())
        assert data["queue_capacity"] is None


class TestDerivedScenarios:
    def test_with_scheduler(self, scenario_factory):
        derived = scenario_factory("MECT").with_scheduler("FCFS")
        assert derived.scheduler == "FCFS"
        assert derived.run().scheduler_name == "FCFS"

    def test_with_intensity(self, scenario_factory):
        low = scenario_factory().with_intensity("low")
        high = scenario_factory().with_intensity("high")
        assert len(high.build_workload()) > len(low.build_workload())

    def test_with_intensity_requires_generator(self, eet_3x2, make_workload):
        scenario = Scenario(
            eet=eet_3x2,
            machine_counts={"M1": 1, "M2": 1},
            scheduler="MECT",
            workload=make_workload([(0, 0.0, 50.0)]),
        )
        with pytest.raises(ConfigurationError):
            scenario.with_intensity("high")


class TestFromCsvFiles:
    def test_fig2_workflow(self, tmp_path, eet_3x2, make_workload):
        from repro.tasks.trace_io import write_workload_csv

        eet_path = tmp_path / "eet.csv"
        eet_3x2.to_csv(eet_path)
        workload_path = tmp_path / "workload.csv"
        write_workload_csv(make_workload([(0, 0.0, 50.0)]), workload_path)
        scenario = Scenario.from_csv_files(
            eet_path, workload_path, scheduler="MECT"
        )
        result = scenario.run()
        assert result.summary.total_tasks == 1
        assert result.summary.completed == 1
