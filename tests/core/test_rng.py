"""Seeded RNG utilities: determinism and substream independence."""

import numpy as np
import pytest

from repro.core.rng import choice_index, derive_seed, make_rng, spawn


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a, b = make_rng(42), make_rng(42)
        assert a.random() == b.random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawn:
    def test_spawn_count(self):
        children = spawn(make_rng(0), 4)
        assert len(children) == 4

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn(make_rng(7), 3)]
        b = [g.random() for g in spawn(make_rng(7), 3)]
        assert a == b

    def test_children_independent_of_sibling_count_prefix(self):
        first_of_two = spawn(make_rng(7), 2)[0].random()
        first_of_five = spawn(make_rng(7), 5)[0].random()
        assert first_of_two == first_of_five

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(make_rng(0), -1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, "workload", 0) == derive_seed(5, "workload", 0)

    def test_label_sensitivity(self):
        assert derive_seed(5, "workload", 0) != derive_seed(5, "workload", 1)
        assert derive_seed(5, "workload") != derive_seed(5, "simulation")

    def test_none_propagates(self):
        assert derive_seed(None, "anything") is None

    def test_string_labels_stable_across_processes(self):
        # The label hash must not rely on salted builtins.hash.
        assert derive_seed(1, "abc") == derive_seed(1, "abc")


class TestChoiceIndex:
    def test_degenerate_weight_always_chosen(self):
        rng = make_rng(0)
        assert all(
            choice_index(rng, [0.0, 1.0, 0.0]) == 1 for _ in range(10)
        )

    def test_rejects_bad_weights(self):
        rng = make_rng(0)
        with pytest.raises(ValueError):
            choice_index(rng, [])
        with pytest.raises(ValueError):
            choice_index(rng, [-1.0, 2.0])
        with pytest.raises(ValueError):
            choice_index(rng, [0.0, 0.0])

    def test_distribution_roughly_matches_weights(self):
        rng = make_rng(123)
        draws = [choice_index(rng, [1, 3]) for _ in range(4000)]
        fraction_of_ones = sum(draws) / len(draws)
        assert 0.70 < fraction_of_ones < 0.80
