"""Simulation clock: monotonicity and reset."""

import pytest

from repro.core.clock import SimulationClock
from repro.core.errors import SimulationStateError


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert SimulationClock().now == 0.0

    def test_custom_start(self):
        clock = SimulationClock(start=5.0)
        assert clock.now == 5.0
        assert clock.start == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationStateError):
            SimulationClock(start=-1.0)

    def test_advance(self):
        clock = SimulationClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_advance_to_same_time_allowed(self):
        clock = SimulationClock()
        clock.advance_to(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_backwards_advance_rejected(self):
        clock = SimulationClock()
        clock.advance_to(4.0)
        with pytest.raises(SimulationStateError):
            clock.advance_to(3.0)

    def test_elapsed(self):
        clock = SimulationClock(start=2.0)
        clock.advance_to(7.0)
        assert clock.elapsed == 5.0

    def test_reset_to_original_start(self):
        clock = SimulationClock(start=1.0)
        clock.advance_to(9.0)
        clock.reset()
        assert clock.now == 1.0

    def test_reset_to_new_start(self):
        clock = SimulationClock()
        clock.advance_to(9.0)
        clock.reset(start=4.0)
        assert clock.now == 4.0
        assert clock.start == 4.0

    def test_reset_negative_rejected(self):
        clock = SimulationClock()
        with pytest.raises(SimulationStateError):
            clock.reset(start=-0.5)
