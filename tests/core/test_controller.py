"""Interactive controller: Play/Pause/Increment/Reset/speed semantics."""

import pytest

from repro.core.controller import SimulationController
from repro.core.errors import ConfigurationError


@pytest.fixture
def factory(scenario_factory):
    scenario = scenario_factory("MECT")
    return scenario.build_simulator


class TestIncrement:
    def test_increment_is_one_event(self, factory):
        controller = SimulationController(factory)
        controller.increment()
        assert controller.simulator.events_processed == 1

    def test_increment_fires_frame_callback(self, factory):
        frames = []
        controller = SimulationController(
            factory, frame_callback=lambda sim, e: frames.append(e)
        )
        controller.increment()
        assert len(frames) == 1

    def test_increment_after_finish_returns_none(self, factory):
        controller = SimulationController(factory)
        controller.play()
        assert controller.increment() is None


class TestPlay:
    def test_play_runs_to_completion(self, factory):
        controller = SimulationController(factory)
        assert controller.play() is True
        assert controller.is_finished

    def test_play_respects_max_events(self, factory):
        controller = SimulationController(factory)
        controller.play(max_events=5)
        assert controller.simulator.events_processed == 5
        assert not controller.is_finished

    def test_pause_from_callback_stops_loop(self, factory):
        controller = SimulationController(factory)

        def pause_after_three(sim, event):
            if sim.events_processed >= 3:
                controller.pause()

        controller.frame_callback = pause_after_three
        finished = controller.play()
        assert not finished
        assert controller.simulator.events_processed == 3

    def test_play_resumes_after_pause(self, factory):
        controller = SimulationController(factory)
        controller.play(max_events=4)
        assert controller.play() is True  # resume to the end

    def test_step_equivalence(self, factory):
        """N increments == one play: identical result records."""
        a = SimulationController(factory)
        while a.increment() is not None:
            pass
        b = SimulationController(factory)
        b.play()
        assert (
            a.simulator.result().task_records
            == b.simulator.result().task_records
        )


class TestSpeed:
    def test_speed_dial_sleeps_scaled_sim_time(self, factory):
        sleeps = []
        controller = SimulationController(
            factory, speed=2.0, sleeper=sleeps.append
        )
        controller.play(max_events=20)
        sim_dt_total = sum(s * 2.0 for s in sleeps)
        assert sim_dt_total == pytest.approx(controller.now, rel=1e-6)

    def test_zero_speed_never_sleeps(self, factory):
        sleeps = []
        controller = SimulationController(
            factory, speed=0.0, sleeper=sleeps.append
        )
        controller.play()
        assert sleeps == []

    def test_negative_speed_rejected(self, factory):
        with pytest.raises(ConfigurationError):
            SimulationController(factory, speed=-1.0)
        controller = SimulationController(factory)
        with pytest.raises(ConfigurationError):
            controller.set_speed(-2.0)

    def test_set_speed(self, factory):
        controller = SimulationController(factory)
        controller.set_speed(5.0)
        assert controller.speed == 5.0


class TestReset:
    def test_reset_discards_progress(self, factory):
        controller = SimulationController(factory)
        controller.play(max_events=10)
        controller.reset()
        assert controller.simulator.events_processed == 0
        assert controller.now == 0.0

    def test_reset_replays_identically(self, factory):
        controller = SimulationController(factory)
        controller.play()
        first = controller.simulator.result().task_records
        controller.reset()
        controller.play()
        second = controller.simulator.result().task_records
        assert first == second

    def test_reset_with_new_factory(self, factory, scenario_factory):
        controller = SimulationController(factory)
        controller.play()
        other = scenario_factory("FCFS")
        controller.reset(other.build_simulator)
        controller.play()
        assert controller.simulator.scheduler.name == "FCFS"

    def test_reset_clears_pause(self, factory):
        controller = SimulationController(factory)
        controller.pause()
        controller.reset()
        assert controller.paused is False


class TestRunToCompletion:
    def test_returns_result(self, factory):
        controller = SimulationController(factory)
        result = controller.run_to_completion()
        assert result.summary.total_tasks > 0

    def test_restores_speed(self, factory):
        controller = SimulationController(factory, speed=3.0, sleeper=lambda s: None)
        controller.run_to_completion()
        assert controller.speed == 3.0
