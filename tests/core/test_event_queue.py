"""Future-event list: heap behaviour, lazy cancellation."""

import pytest

from repro.core.errors import SimulationStateError
from repro.core.event_queue import EventQueue
from repro.core.events import Event, EventType


def ev(time: float, kind: EventType = EventType.TASK_ARRIVAL) -> Event:
    return Event(time, kind)


class TestBasicOps:
    def test_empty_queue_is_falsy(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0

    def test_push_pop_orders_by_time(self):
        queue = EventQueue()
        events = [ev(3.0), ev(1.0), ev(2.0)]
        for e in events:
            queue.push(e)
        assert [queue.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationStateError):
            EventQueue().pop()

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.push(ev(1.0))
        assert queue.peek().time == 1.0
        assert len(queue) == 1

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationStateError):
            EventQueue().peek()

    def test_next_time(self):
        queue = EventQueue()
        assert queue.next_time() is None
        queue.push(ev(4.5))
        assert queue.next_time() == 4.5

    def test_len_counts_live_events(self):
        queue = EventQueue()
        for t in (1.0, 2.0, 3.0):
            queue.push(ev(t))
        assert len(queue) == 3
        queue.pop()
        assert len(queue) == 2

    def test_clear(self):
        queue = EventQueue()
        queue.push(ev(1.0))
        queue.clear()
        assert not queue

    def test_drain_yields_in_order(self):
        queue = EventQueue()
        for t in (5.0, 1.0, 3.0):
            queue.push(ev(t))
        assert [e.time for e in queue.drain()] == [1.0, 3.0, 5.0]
        assert not queue


class TestPriorityInterleaving:
    def test_same_time_priority_order(self):
        queue = EventQueue()
        arrival = ev(1.0, EventType.TASK_ARRIVAL)
        completion = ev(1.0, EventType.TASK_COMPLETION)
        deadline = ev(1.0, EventType.TASK_DEADLINE)
        for e in (deadline, arrival, completion):
            queue.push(e)
        assert queue.pop() is completion
        assert queue.pop() is arrival
        assert queue.pop() is deadline


class TestCancellation:
    def test_cancelled_event_never_pops(self):
        queue = EventQueue()
        doomed = queue.push(ev(1.0))
        queue.push(ev(2.0))
        assert queue.cancel(doomed)
        assert queue.pop().time == 2.0
        assert not queue

    def test_cancel_updates_len(self):
        queue = EventQueue()
        doomed = queue.push(ev(1.0))
        queue.push(ev(2.0))
        queue.cancel(doomed)
        assert len(queue) == 1

    def test_double_cancel_returns_false(self):
        queue = EventQueue()
        doomed = queue.push(ev(1.0))
        assert queue.cancel(doomed)
        assert not queue.cancel(doomed)

    def test_is_cancelled(self):
        queue = EventQueue()
        doomed = queue.push(ev(1.0))
        assert not queue.is_cancelled(doomed)
        queue.cancel(doomed)
        assert queue.is_cancelled(doomed)

    def test_peek_skips_cancelled_head(self):
        queue = EventQueue()
        doomed = queue.push(ev(1.0))
        live = queue.push(ev(2.0))
        queue.cancel(doomed)
        assert queue.peek() is live

    def test_cancel_all_then_empty(self):
        queue = EventQueue()
        handles = [queue.push(ev(float(t))) for t in range(5)]
        for h in handles:
            queue.cancel(h)
        assert not queue
        with pytest.raises(SimulationStateError):
            queue.pop()

    def test_interleaved_cancel_and_pop(self):
        queue = EventQueue()
        events = [queue.push(ev(float(t))) for t in range(6)]
        queue.cancel(events[0])
        queue.cancel(events[3])
        popped = [queue.pop().time for _ in range(len(queue))]
        assert popped == [1.0, 2.0, 4.0, 5.0]


class TestPushMany:
    def test_bulk_population_orders_like_pushes(self):
        bulk = EventQueue()
        single = EventQueue()
        times = [5.0, 1.0, 3.0, 2.0, 4.0]
        events = [ev(t) for t in times]
        bulk.push_many(events)
        for e in events:
            single.push(e)
        assert len(bulk) == len(single) == 5
        assert [e.time for e in bulk.drain()] == [e.time for e in single.drain()]

    def test_push_many_on_nonempty_queue(self):
        queue = EventQueue()
        queue.push(ev(2.0))
        queue.push_many([ev(1.0), ev(3.0)])
        assert [e.time for e in queue.drain()] == [1.0, 2.0, 3.0]

    def test_push_many_empty_iterable(self):
        queue = EventQueue()
        queue.push_many([])
        assert not queue
