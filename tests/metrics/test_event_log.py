"""Event trace log."""

import io

import pytest

from repro.core.events import EventType
from repro.metrics.event_log import EventLog


@pytest.fixture
def logged_run(scenario_factory):
    log = EventLog()
    scenario = scenario_factory("MECT")
    sim = scenario.build_simulator()
    sim.observers.append(log)
    sim.run()
    return log, sim


class TestCollection:
    def test_one_record_per_event(self, logged_run):
        log, sim = logged_run
        assert len(log) == sim.events_processed

    def test_records_monotone_in_time(self, logged_run):
        log, _ = logged_run
        times = [r.time for r in log.records]
        assert times == sorted(times)

    def test_arrival_records_carry_task(self, logged_run):
        log, _ = logged_run
        arrivals = log.of_type(EventType.TASK_ARRIVAL)
        assert arrivals
        assert all(r.task_id is not None for r in arrivals)
        assert all(r.task_type for r in arrivals)

    def test_completion_records_carry_machine(self, logged_run):
        log, _ = logged_run
        completions = log.of_type("task_completion")
        assert completions
        assert all(r.machine for r in completions)

    def test_counters_monotone(self, logged_run):
        log, _ = logged_run
        done = [r.completed for r in log.records]
        assert done == sorted(done)

    def test_for_task_life_story(self, logged_run):
        log, sim = logged_run
        task = sim.workload[0]
        story = log.for_task(task.id)
        kinds = [r.event_type for r in story]
        assert kinds[0] == "task_arrival"
        assert "task_completion" in kinds or "task_deadline" in kinds

    def test_peak_backlog_nonnegative(self, logged_run):
        log, _ = logged_run
        assert log.peak_backlog() >= 0

    def test_max_records_guard(self, scenario_factory):
        log = EventLog(max_records=5)
        sim = scenario_factory("MECT").build_simulator()
        sim.observers.append(log)
        sim.run()
        assert len(log) == 5


class TestExport:
    def test_csv_row_count(self, logged_run):
        log, _ = logged_run
        text = log.to_csv()
        assert len(text.splitlines()) == len(log) + 1

    def test_csv_to_stream(self, logged_run):
        log, _ = logged_run
        buf = io.StringIO()
        log.to_csv(buf)
        assert buf.getvalue().startswith("seq,time,event_type")

    def test_csv_to_path(self, logged_run, tmp_path):
        log, _ = logged_run
        path = tmp_path / "trace.csv"
        log.to_csv(path)
        assert path.exists()

    def test_to_text_truncates(self, logged_run):
        log, _ = logged_run
        text = log.to_text(limit=3)
        assert "more)" in text


class TestFailureEvents:
    def test_failure_and_repair_logged(self, eet_3x2, make_workload):
        from repro.core.simulator import Simulator
        from repro.machines.cluster import Cluster
        from repro.machines.failures import FailureModel
        from repro.scheduling.registry import create_scheduler

        log = EventLog()
        sim = Simulator(
            cluster=Cluster.build(eet_3x2, {"M1": 1, "M2": 1}),
            workload=make_workload(
                [(0, float(i), 1e9) for i in range(20)]
            ),
            scheduler=create_scheduler("MECT"),
            failure_model=FailureModel(mtbf=5.0, mttr=2.0),
            seed=3,
            observers=[log],
        )
        sim.run()
        failures = log.of_type("machine_failure")
        repairs = log.of_type("machine_repair")
        assert failures and repairs
        assert all(r.machine for r in failures)
