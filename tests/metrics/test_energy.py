"""Cluster energy breakdown."""

import pytest

from repro.core.simulator import Simulator
from repro.metrics.energy import energy_breakdown
from repro.scheduling.registry import create_scheduler


class TestEnergyBreakdown:
    def _run(self, powered_cluster, make_workload):
        workload = make_workload([(0, 0.0, 100.0), (1, 0.0, 100.0)])
        sim = Simulator(
            cluster=powered_cluster,
            workload=workload,
            scheduler=create_scheduler("MECT"),
        )
        sim.run()
        return powered_cluster

    def test_total_is_idle_plus_busy(self, powered_cluster, make_workload):
        cluster = self._run(powered_cluster, make_workload)
        bd = energy_breakdown(cluster)
        assert bd.total == pytest.approx(bd.idle + bd.busy)

    def test_hand_computed_values(self, powered_cluster, make_workload):
        # MECT: T1 -> M1 (4s @ 100W), T2 -> M2 (3s @ 50W). Simulation ends at
        # the last event: deadline events at t=100 keep both meters running.
        cluster = self._run(powered_cluster, make_workload)
        bd = energy_breakdown(cluster)
        assert bd.busy == pytest.approx(4 * 100.0 + 3 * 50.0)
        # idle: M1 idles 96 s @ 10 W, M2 idles 97 s @ 5 W
        assert bd.idle == pytest.approx(96 * 10.0 + 97 * 5.0)

    def test_by_machine_sums_to_total(self, powered_cluster, make_workload):
        cluster = self._run(powered_cluster, make_workload)
        bd = energy_breakdown(cluster)
        assert sum(bd.by_machine.values()) == pytest.approx(bd.total)

    def test_by_machine_type_aggregates(self, eet_3x2, make_workload):
        from repro.machines.cluster import Cluster
        from repro.machines.power import PowerProfile

        cluster = Cluster.build(
            eet_3x2,
            {"M1": 2, "M2": 1},
            power_profiles={"M1": PowerProfile(idle_watts=1.0)},
        )
        sim = Simulator(
            cluster=cluster,
            workload=make_workload([(0, 0.0, 50.0)]),
            scheduler=create_scheduler("MECT"),
        )
        sim.run()
        bd = energy_breakdown(cluster)
        assert set(bd.by_machine_type) == {"M1", "M2"}
        assert bd.by_machine_type["M1"] == pytest.approx(
            bd.by_machine["M1-0"] + bd.by_machine["M1-1"]
        )

    def test_idle_fraction(self, powered_cluster, make_workload):
        cluster = self._run(powered_cluster, make_workload)
        bd = energy_breakdown(cluster)
        assert 0.0 < bd.idle_fraction < 1.0

    def test_zero_power_cluster(self, cluster_3x2, make_workload):
        sim = Simulator(
            cluster=cluster_3x2,
            workload=make_workload([(0, 0.0, 50.0)]),
            scheduler=create_scheduler("MECT"),
        )
        sim.run()
        bd = energy_breakdown(cluster_3x2)
        assert bd.total == 0.0
        assert bd.idle_fraction == 0.0

    def test_as_dict(self, powered_cluster, make_workload):
        cluster = self._run(powered_cluster, make_workload)
        d = energy_breakdown(cluster).as_dict()
        assert "total_energy" in d
        assert "energy[M1]" in d
