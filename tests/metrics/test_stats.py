"""Statistics helpers."""

import math

import pytest

from repro.metrics.stats import (
    confidence_interval,
    jain_fairness,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0

    def test_single_sample_std_zero(self):
        assert summarize([5.0]).std == 0.0

    def test_ddof1_std(self):
        s = summarize([1.0, 3.0])
        assert s.std == pytest.approx(math.sqrt(2.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_keys(self):
        d = summarize([1.0, 2.0]).as_dict()
        assert set(d) == {"n", "mean", "std", "min", "median", "max"}


class TestConfidenceInterval:
    def test_contains_mean(self):
        lo, hi = confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0])
        assert lo < 3.0 < hi

    def test_symmetric_around_mean(self):
        lo, hi = confidence_interval([2.0, 4.0, 6.0])
        assert (lo + hi) / 2 == pytest.approx(4.0)

    def test_single_sample_degenerate(self):
        assert confidence_interval([7.0]) == (7.0, 7.0)

    def test_zero_variance_collapses(self):
        lo, hi = confidence_interval([3.0, 3.0, 3.0])
        assert lo == hi == 3.0

    def test_more_samples_tighter(self):
        wide = confidence_interval([1.0, 5.0, 3.0])
        narrow = confidence_interval([1.0, 5.0, 3.0] * 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([])

    def test_unsupported_level_rejected(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], level=0.99)


class TestJainFairness:
    def test_perfectly_fair(self):
        assert jain_fairness([0.5, 0.5, 0.5]) == pytest.approx(1.0)

    def test_perfectly_unfair(self):
        # One of n gets everything -> index = 1/n.
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_bounds(self):
        value = jain_fairness([0.9, 0.5, 0.1])
        assert 1.0 / 3.0 < value < 1.0

    def test_all_zero_is_fair(self):
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_scale_invariant(self):
        assert jain_fairness([1.0, 2.0]) == pytest.approx(
            jain_fairness([10.0, 20.0])
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([-1.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([])
