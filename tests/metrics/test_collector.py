"""Metrics collection and summary computation."""

import pytest

from repro.core.errors import ReportError
from repro.metrics.collector import MetricsCollector
from repro.tasks.task import DropStage, Task
from repro.tasks.task_type import TaskType

T1 = TaskType("T1", 0)
T2 = TaskType("T2", 1)


def completed_task(i=0, task_type=T1, start=0.0, end=5.0, deadline=100.0):
    t = Task(id=i, task_type=task_type, arrival_time=0.0, deadline=deadline)
    t.enqueue_batch()
    t.assign(None, 0.0)  # type: ignore[arg-type]
    t.start(start)
    t.complete(end)
    return t


def cancelled_task(i=0, task_type=T1):
    t = Task(id=i, task_type=task_type, arrival_time=0.0, deadline=10.0)
    t.enqueue_batch()
    t.cancel(10.0)
    return t


def missed_task(i=0, task_type=T1):
    t = Task(id=i, task_type=task_type, arrival_time=0.0, deadline=10.0)
    t.enqueue_batch()
    t.assign(None, 0.0)  # type: ignore[arg-type]
    t.miss(10.0, DropStage.MACHINE_QUEUE)
    return t


class TestIngestion:
    def test_non_terminal_rejected(self):
        collector = MetricsCollector()
        t = Task(id=0, task_type=T1, arrival_time=0.0, deadline=1.0)
        with pytest.raises(ReportError):
            collector.record_terminal(t)

    def test_double_record_rejected(self):
        collector = MetricsCollector()
        t = completed_task()
        collector.record_terminal(t)
        with pytest.raises(ReportError):
            collector.record_terminal(t)

    def test_recorded_count(self):
        collector = MetricsCollector()
        collector.record_terminal(completed_task(0))
        collector.record_terminal(cancelled_task(1))
        assert collector.recorded == 2

    def test_tasks_sorted_by_id(self):
        collector = MetricsCollector()
        collector.record_terminal(completed_task(5))
        collector.record_terminal(completed_task(2))
        assert [t.id for t in collector.tasks()] == [2, 5]

    def test_reset(self):
        collector = MetricsCollector()
        collector.record_terminal(completed_task(0))
        collector.reset()
        assert collector.recorded == 0


class TestTaskRecords:
    def test_completed_record_fields(self):
        collector = MetricsCollector()
        collector.record_terminal(completed_task(3, start=1.0, end=6.0))
        (row,) = collector.task_records()
        assert row["task_id"] == 3
        assert row["status"] == "completed"
        assert row["start_time"] == 1.0
        assert row["completion_time"] == 6.0
        assert row["wait_time"] == 1.0
        assert row["response_time"] == 6.0
        assert row["on_time"] is True

    def test_cancelled_record_has_empty_machine(self):
        collector = MetricsCollector()
        collector.record_terminal(cancelled_task())
        (row,) = collector.task_records()
        assert row["machine"] == ""
        assert row["status"] == "cancelled"
        assert row["cancelled_time"] == 10.0
        assert row["completion_time"] == ""

    def test_missed_record_drop_stage(self):
        collector = MetricsCollector()
        collector.record_terminal(missed_task())
        (row,) = collector.task_records()
        assert row["drop_stage"] == "machine_queue"
        assert row["missed_time"] == 10.0


class TestSummary:
    def _collector(self):
        collector = MetricsCollector()
        collector.record_terminal(completed_task(0, T1, 0.0, 5.0))
        collector.record_terminal(completed_task(1, T2, 5.0, 9.0))
        collector.record_terminal(cancelled_task(2, T1))
        collector.record_terminal(missed_task(3, T2))
        return collector

    def test_counts(self, cluster_3x2):
        summary = self._collector().summary(cluster_3x2, end_time=20.0)
        assert summary.total_tasks == 4
        assert summary.completed == 2
        assert summary.cancelled == 1
        assert summary.missed == 1

    def test_rates(self, cluster_3x2):
        summary = self._collector().summary(cluster_3x2, end_time=20.0)
        assert summary.completion_rate == 0.5
        assert summary.cancellation_rate == 0.25
        assert summary.miss_rate == 0.25

    def test_conservation(self, cluster_3x2):
        summary = self._collector().summary(cluster_3x2, end_time=20.0)
        assert (
            summary.completed + summary.cancelled + summary.missed
            == summary.total_tasks
        )

    def test_makespan(self, cluster_3x2):
        summary = self._collector().summary(cluster_3x2, end_time=20.0)
        assert summary.makespan == 9.0

    def test_per_type_rates(self, cluster_3x2):
        summary = self._collector().summary(cluster_3x2, end_time=20.0)
        assert summary.completion_rate_by_type == {"T1": 0.5, "T2": 0.5}

    def test_fairness_perfect_when_equal(self, cluster_3x2):
        summary = self._collector().summary(cluster_3x2, end_time=20.0)
        assert summary.fairness_index == pytest.approx(1.0)

    def test_throughput(self, cluster_3x2):
        summary = self._collector().summary(cluster_3x2, end_time=20.0)
        assert summary.throughput == pytest.approx(2 / 20.0)

    def test_empty_summary(self, cluster_3x2):
        summary = MetricsCollector().summary(cluster_3x2, end_time=0.0)
        assert summary.total_tasks == 0
        assert summary.completion_rate == 0.0
        assert summary.fairness_index == 1.0

    def test_as_dict_flattens_type_rates(self, cluster_3x2):
        d = self._collector().summary(cluster_3x2, end_time=20.0).as_dict()
        assert d["completion_rate[T1]"] == 0.5
        assert "completion_rate_by_type" not in d
