"""Policy comparison utilities."""

import pytest

from repro.core.errors import ConfigurationError
from repro.metrics.comparison import PolicyComparison, compare_policies


@pytest.fixture(scope="module")
def comparison(request):
    # Build from a module-local scenario to keep this fixture self-contained.
    import numpy as np

    from repro.core.config import Scenario
    from repro.machines.eet import EETMatrix

    eet = EETMatrix(
        np.array([[4.0, 10.0], [9.0, 3.0], [5.0, 6.0]]),
        ["T1", "T2", "T3"],
        ["M1", "M2"],
    )
    scenario = Scenario(
        eet=eet,
        machine_counts={"M1": 1, "M2": 1},
        scheduler="MECT",
        generator={"duration": 150.0, "intensity": "high"},
        seed=4,
    )
    return compare_policies(
        scenario, ["FCFS", "MECT", "RANDOM"], replications=3
    )


class TestPolicyComparison:
    def test_labels(self, comparison):
        assert comparison.labels == ["FCFS", "MECT", "RANDOM"]

    def test_replication_counts(self, comparison):
        for label in comparison.labels:
            assert len(comparison.metric_values(label, "completion_rate")) == 3

    def test_mean_in_unit_interval(self, comparison):
        for label in comparison.labels:
            assert 0.0 <= comparison.mean(label, "completion_rate") <= 1.0

    def test_interval_brackets_mean(self, comparison):
        lo, hi = comparison.interval("MECT", "completion_rate")
        assert lo <= comparison.mean("MECT", "completion_rate") <= hi

    def test_ranking_sorted(self, comparison):
        ranking = comparison.ranking("completion_rate")
        values = [v for _, v in ranking]
        assert values == sorted(values, reverse=True)

    def test_winner_beats_random(self, comparison):
        # On a contended heterogeneous system the winner shouldn't be RANDOM.
        assert comparison.winner("completion_rate") in ("FCFS", "MECT")

    def test_table_rows(self, comparison):
        rows = comparison.table(["completion_rate", "mean_wait_time"])
        assert len(rows) == 3 * 2
        assert {r["metric"] for r in rows} == {
            "completion_rate",
            "mean_wait_time",
        }
        for row in rows:
            assert row["ci_low"] <= row["mean"] <= row["ci_high"]

    def test_chart(self, comparison):
        chart = comparison.chart(
            "completion_rate", scale=100.0, unit="%"
        )
        assert len(chart.labels) == 3
        assert "comparison" in chart.to_text()

    def test_unknown_label_rejected(self, comparison):
        with pytest.raises(ConfigurationError):
            comparison.mean("NOPE", "completion_rate")

    def test_unknown_metric_rejected(self, comparison):
        with pytest.raises(ConfigurationError):
            comparison.mean("MECT", "charisma")

    def test_empty_winner_rejected(self):
        with pytest.raises(ConfigurationError):
            PolicyComparison().winner("completion_rate")

    def test_paired_replications(self, comparison):
        """Replication i sees identical workloads across policies."""
        fcfs = comparison.results["FCFS"]
        mect = comparison.results["MECT"]
        for a, b in zip(fcfs, mect):
            assert a.summary.total_tasks == b.summary.total_tasks


class TestCompareValidation:
    def test_zero_replications_rejected(self):
        import numpy as np

        from repro.core.config import Scenario
        from repro.machines.eet import EETMatrix

        eet = EETMatrix(np.array([[4.0]]), ["T1"], ["M1"])
        scenario = Scenario(
            eet=eet,
            machine_counts={"M1": 1},
            scheduler="MECT",
            generator={"duration": 10.0},
            seed=1,
        )
        with pytest.raises(ConfigurationError):
            compare_policies(scenario, ["FCFS"], replications=0)
