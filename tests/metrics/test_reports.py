"""The four E2C reports: content, CSV export, menu lookup."""

import io

import pytest

from repro.core.errors import ReportError
from repro.metrics.reports import Report


@pytest.fixture
def bundle(scenario_factory):
    result = scenario_factory("MECT").run()
    return result.reports, result


class TestReportObject:
    def test_missing_column_rejected(self):
        with pytest.raises(ReportError):
            Report("x", ["a", "b"], [{"a": 1}])

    def test_empty_columns_rejected(self):
        with pytest.raises(ReportError):
            Report("x", [], [])

    def test_to_dicts_ordered_and_filtered(self):
        r = Report("x", ["b", "a"], [{"a": 1, "b": 2, "c": 3}])
        assert r.to_dicts() == [{"b": 2, "a": 1}]

    def test_csv_header(self):
        r = Report("x", ["a", "b"], [{"a": 1, "b": 2.5}])
        text = r.to_csv()
        assert text.splitlines()[0] == "a,b"
        assert text.splitlines()[1] == "1,2.5"

    def test_csv_bool_formatting(self):
        r = Report("x", ["ok"], [{"ok": True}, {"ok": False}])
        lines = r.to_csv().splitlines()
        assert lines[1:] == ["true", "false"]

    def test_csv_to_stream(self):
        r = Report("x", ["a"], [{"a": 1}])
        buf = io.StringIO()
        r.to_csv(buf)
        assert buf.getvalue().startswith("a\n")

    def test_to_text_contains_name_and_rows(self):
        r = Report("My Report", ["col"], [{"col": "value"}])
        text = r.to_text()
        assert "My Report" in text
        assert "value" in text

    def test_len(self):
        assert len(Report("x", ["a"], [{"a": 1}, {"a": 2}])) == 2


class TestBundle:
    def test_task_report_rows_match_workload(self, bundle):
        reports, result = bundle
        assert len(reports.task_report()) == result.summary.total_tasks

    def test_machine_report_rows_match_cluster(self, bundle):
        reports, _ = bundle
        assert len(reports.machine_report()) == 2

    def test_summary_report_key_values(self, bundle):
        reports, result = bundle
        rows = {r["metric"]: r["value"] for r in reports.summary_report().rows}
        assert rows["total_tasks"] == result.summary.total_tasks
        assert rows["completed"] == result.summary.completed

    def test_full_report_includes_machine_type(self, bundle):
        reports, _ = bundle
        report = reports.full_report()
        assert "machine_type" in report.columns
        executed = [r for r in report.rows if r["machine"]]
        assert all(r["machine_type"] for r in executed)

    def test_by_name_matches_menu_labels(self, bundle):
        reports, _ = bundle
        assert reports.by_name("Full Report").name == "Full Report"
        assert reports.by_name("task").name == "Task Report"
        assert reports.by_name("MACHINE").name == "Machine Report"
        assert reports.by_name("Summary").name == "Summary Report"

    def test_by_name_unknown_rejected(self, bundle):
        reports, _ = bundle
        with pytest.raises(ReportError):
            reports.by_name("Annual Report")

    def test_save_all_writes_four_csvs(self, bundle, tmp_path):
        reports, _ = bundle
        paths = reports.save_all(tmp_path, prefix="run1_")
        assert len(paths) == 4
        names = {p.name for p in paths}
        assert names == {
            "run1_full_report.csv",
            "run1_task_report.csv",
            "run1_machine_report.csv",
            "run1_summary_report.csv",
        }
        for p in paths:
            assert p.read_text(encoding="utf-8").count("\n") >= 1

    def test_csv_round_trip_row_count(self, bundle):
        import csv

        reports, result = bundle
        text = reports.task_report().to_csv()
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == result.summary.total_tasks
