"""End-to-end integration: every policy through the full pipeline."""

import pytest

from repro.core.config import Scenario
from repro.machines.eet_generation import generate_eet_cvb
from repro.scheduling.base import SchedulingMode
from repro.scheduling.registry import available_schedulers, scheduler_class

HET_EET = generate_eet_cvb(
    3, 3, mean_task=10.0, v_task=0.4, v_machine=0.5, seed=17
)


def scenario_for(policy: str, **overrides) -> Scenario:
    mode = scheduler_class(policy).mode
    params = dict(
        eet=HET_EET,
        machine_counts={n: 1 for n in HET_EET.machine_type_names},
        scheduler=policy,
        queue_capacity=(3 if mode is SchedulingMode.BATCH else float("inf")),
        generator={"duration": 200.0, "intensity": "medium"},
        seed=31,
    )
    params.update(overrides)
    return Scenario(**params)


class TestEveryPolicyEndToEnd:
    @pytest.mark.parametrize("policy", available_schedulers())
    def test_policy_runs_clean(self, policy):
        result = scenario_for(policy).run()
        s = result.summary
        assert s.total_tasks > 0
        assert s.completed + s.cancelled + s.missed == s.total_tasks
        assert 0.0 <= s.completion_rate <= 1.0

    @pytest.mark.parametrize("policy", available_schedulers())
    def test_policy_reports_render(self, policy):
        result = scenario_for(policy).run()
        bundle = result.reports
        for name in ("full", "task", "machine", "summary"):
            report = bundle.by_name(name)
            assert report.to_csv()
            assert report.to_text()


class TestExecutionNoise:
    def test_noisy_runtimes_still_conserve(self):
        result = scenario_for(
            "MECT", execution_model={"kind": "lognormal", "sigma": 0.4}
        ).run()
        s = result.summary
        assert s.completed + s.cancelled + s.missed == s.total_tasks

    def test_noise_changes_outcomes(self):
        clean = scenario_for("MECT").run()
        noisy = scenario_for(
            "MECT", execution_model={"kind": "gamma", "cov": 0.5}
        ).run()
        clean_records = [
            r["completion_time"] for r in clean.task_records
        ]
        noisy_records = [
            r["completion_time"] for r in noisy.task_records
        ]
        assert clean_records != noisy_records


class TestVisualizationIntegration:
    def test_timeline_from_full_run(self):
        result = scenario_for("MM").run()
        from repro.viz.timeline import timeline_from_records

        text = timeline_from_records(result.task_records).to_text()
        assert "machine timeline" in text

    def test_animation_full_run(self):
        from repro.viz.animation import Animator

        animator = Animator(
            scenario_for("MECT").build_simulator, frame_every=20
        )
        animator.play()
        assert animator.simulator.is_finished


class TestScenarioJsonPipeline:
    def test_json_file_to_run(self, tmp_path):
        scenario = scenario_for("MSD")
        path = tmp_path / "scenario.json"
        scenario.to_json(path)
        from repro.core.config import Scenario as S

        clone = S.from_json(path)
        assert (
            clone.run().summary.as_dict() == scenario.run().summary.as_dict()
        )
