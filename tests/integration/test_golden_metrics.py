"""Golden-metrics determinism: pinned SummaryMetrics for preset scenarios.

These tests freeze the *exact* numeric output of several registered presets
(two single-cluster, one failure-enabled, one trace-driven, five federated —
contended WAN links, mid-queue migration, background cross-traffic and the
learning bandit gateway included) at fixed seeds. Their purpose is to make hot-path
refactors falsifiable: any
change to event ordering, floating-point evaluation order, RNG consumption,
or metrics aggregation that alters simulation results — however slightly —
fails here with a precise diff, instead of silently shifting every figure
the repository regenerates.

The values were recorded from the engine as of the hot-path overhaul PR
(which itself reproduced the pre-overhaul engine bit-for-bit). If a future
change *intentionally* alters results, re-pin these dictionaries in the same
commit and say why in its message.
"""

import pytest

from repro.scenarios import build_scenario

#: satellite_imaging preset under the Min-Min batch policy, seed 41.
GOLDEN_SATELLITE_MM_SEED41 = {
    "total_tasks": 231,
    "completed": 231,
    "cancelled": 0,
    "missed": 0,
    "completion_rate": 1.0,
    "cancellation_rate": 0.0,
    "miss_rate": 0.0,
    "on_time": 231,
    "on_time_rate": 1.0,
    "makespan": 604.7227037857455,
    "total_energy": 226072.09876250156,
    "idle_energy": 40232.09876250155,
    "busy_energy": 185840.0,
    "energy_per_completed_task": 978.6670942099635,
    "mean_wait_time": 2.9922305547029966,
    "mean_response_time": 9.01387557634802,
    "throughput": 0.34332224629298114,
    "mean_utilization": 0.516841173802529,
    "fairness_index": 1.0,
    "completion_rate[image_enhancement]": 1.0,
    "completion_rate[noise_removal]": 1.0,
    "completion_rate[object_detection]": 1.0,
}
GOLDEN_SATELLITE_EVENTS = 693
GOLDEN_SATELLITE_END_TIME = 672.8372614772868

#: edge_ai preset with its default FELARE policy and stock seed (11).
GOLDEN_EDGE_AI_FELARE = {
    "total_tasks": 309,
    "completed": 230,
    "cancelled": 53,
    "missed": 26,
    "completion_rate": 0.7443365695792881,
    "cancellation_rate": 0.1715210355987055,
    "miss_rate": 0.08414239482200647,
    "on_time": 230,
    "on_time_rate": 0.7443365695792881,
    "makespan": 435.3406242518471,
    "total_energy": 20916.994251413937,
    "idle_energy": 357.72767193532894,
    "busy_energy": 20559.266579478608,
    "energy_per_completed_task": 90.94345326701712,
    "mean_wait_time": 19.579392883076395,
    "mean_response_time": 26.611401585012942,
    "throughput": 0.521477580800053,
    "mean_utilization": 0.9599407090092269,
    "fairness_index": 0.9997405643111807,
    "completion_rate[face_recognition]": 0.73,
    "completion_rate[object_detection]": 0.7425742574257426,
    "completion_rate[speech_recognition]": 0.7592592592592593,
}
GOLDEN_EDGE_AI_EVENTS = 848
GOLDEN_EDGE_AI_END_TIME = 441.0544354507687

#: satellite_imaging with failure injection (mtbf=120, mttr=30), MM, seed 41.
GOLDEN_SATELLITE_FAULTY_MM_SEED41 = {
    "total_tasks": 231,
    "completed": 193,
    "cancelled": 6,
    "missed": 32,
    "completion_rate": 0.8354978354978355,
    "cancellation_rate": 0.025974025974025976,
    "miss_rate": 0.13852813852813853,
    "on_time": 193,
    "on_time_rate": 0.8354978354978355,
    "makespan": 644.5914613599795,
    "total_energy": 256531.6083688552,
    "idle_energy": 46158.528375626185,
    "busy_energy": 210373.079993229,
    "energy_per_completed_task": 1329.1793179733431,
    "mean_wait_time": 19.683964253806074,
    "mean_response_time": 24.811845502105722,
    "throughput": 0.1764056053472596,
    "mean_utilization": 0.394516191432152,
    "fairness_index": 0.9957049129218317,
    "completion_rate[image_enhancement]": 0.8947368421052632,
    "completion_rate[noise_removal]": 0.8230088495575221,
    "completion_rate[object_detection]": 0.7619047619047619,
}
GOLDEN_SATELLITE_FAULTY_EVENTS = 703
GOLDEN_SATELLITE_FAULTY_END_TIME = 1094.0695428587649

#: edge_cloud federated preset under its stock EET_AWARE_REMOTE gateway.
GOLDEN_EDGE_CLOUD_GLOBAL = {
    "total_tasks": 699,
    "completed": 699,
    "cancelled": 0,
    "missed": 0,
    "completion_rate": 1.0,
    "cancellation_rate": 0.0,
    "miss_rate": 0.0,
    "on_time": 699,
    "on_time_rate": 1.0,
    "makespan": 409.1590699643162,
    "total_energy": 417580.05747537746,
    "idle_energy": 39718.05747537745,
    "busy_energy": 377862.0,
    "energy_per_completed_task": 597.3963626257188,
    "mean_wait_time": 2.878807832096141,
    "mean_response_time": 6.611282796330766,
    "throughput": 1.3661378549911254,
    "mean_utilization": 0.5099075341447563,
    "fairness_index": 1.0,
    "completion_rate[model_update]": 1.0,
    "completion_rate[sensor_fusion]": 1.0,
    "completion_rate[video_analytics]": 1.0,
}
GOLDEN_EDGE_CLOUD_EVENTS = 2723
GOLDEN_EDGE_CLOUD_END_TIME = 511.6613945263531
GOLDEN_EDGE_CLOUD_ROUTING = {
    "edge": {"edge": 73, "cloud": 626},
    "cloud": {"edge": 0, "cloud": 0},
}

#: fed_congested preset: contended WAN links (FIFO + processor sharing)
#: with per-link energy, under the congestion-aware EET_AWARE_REMOTE.
GOLDEN_FED_CONGESTED_GLOBAL = {
    "total_tasks": 800,
    "completed": 627,
    "cancelled": 0,
    "missed": 173,
    "completion_rate": 0.78375,
    "cancellation_rate": 0.0,
    "miss_rate": 0.21625,
    "on_time": 627,
    "on_time_rate": 0.78375,
    "makespan": 344.25926907998087,
    "total_energy": 371360.1892161525,
    "idle_energy": 19415.676667335145,
    "busy_energy": 351944.5125488173,
    "energy_per_completed_task": 592.2810035345334,
    "mean_wait_time": 15.885799988162992,
    "mean_response_time": 21.384953252637658,
    "throughput": 1.5340254484664446,
    "mean_utilization": 0.7768407693780794,
    "fairness_index": 0.9614600596725863,
    "completion_rate[model_update]": 1.0,
    "completion_rate[sensor_fusion]": 0.6279569892473118,
    "completion_rate[video_analytics]": 1.0,
}
GOLDEN_FED_CONGESTED_EVENTS = 3473
GOLDEN_FED_CONGESTED_END_TIME = 408.728551815622
GOLDEN_FED_CONGESTED_ROUTING = {
    "edge_a": {"edge_a": 106, "edge_b": 96, "cloud": 200},
    "edge_b": {"edge_a": 61, "edge_b": 71, "cloud": 266},
    "cloud": {"edge_a": 0, "edge_b": 0, "cloud": 0},
}
GOLDEN_FED_CONGESTED_WAN_TIME = 2031.877173827545
#: Per-link (delivered, busy_time, transfer_energy) triples.
GOLDEN_FED_CONGESTED_LINKS = {
    "edge_a<->cloud": (200, 252.875, 708.0499999999997),
    "edge_a<->edge_b": (157, 2.1499999999992276, 15.050000000000036),
    "edge_b<->cloud": (266, 260.93749999999994, 730.6249999999985),
}

#: fed_rebalance preset: mid-queue migration (LONGEST_WAIT every 3 s) off a
#: saturated access site over a contended FIFO uplink, sticky gateway.
GOLDEN_FED_REBALANCE_GLOBAL = {
    "total_tasks": 694,
    "completed": 462,
    "cancelled": 127,
    "missed": 105,
    "completion_rate": 0.6657060518731989,
    "cancellation_rate": 0.1829971181556196,
    "miss_rate": 0.15129682997118155,
    "on_time": 462,
    "on_time_rate": 0.6657060518731989,
    "makespan": 350.9449856665051,
    "total_energy": 306080.74653679924,
    "idle_energy": 47824.316422785945,
    "busy_energy": 258256.4301140133,
    "energy_per_completed_task": 662.5124383913403,
    "mean_wait_time": 18.228127619813776,
    "mean_response_time": 22.92737603865774,
    "throughput": 1.1269930702489348,
    "mean_utilization": 0.6450476252513202,
    "fairness_index": 0.9397142442307997,
    "completion_rate[model_update]": 1.0,
    "completion_rate[sensor_fusion]": 0.5773195876288659,
    "completion_rate[video_analytics]": 0.6363636363636364,
}
GOLDEN_FED_REBALANCE_EVENTS = 2699
GOLDEN_FED_REBALANCE_END_TIME = 409.94040885979143
#: The sticky gateway never offloads at arrival; every cross-cluster move
#: is a mid-queue migration (including two back-migrations relief→access).
GOLDEN_FED_REBALANCE_ROUTING = {
    "access": {"access": 694, "relief": 0},
    "relief": {"access": 0, "relief": 0},
}
GOLDEN_FED_REBALANCE_MIGRATIONS = {
    "access": {"access": 0, "relief": 491},
    "relief": {"access": 2, "relief": 0},
}
GOLDEN_FED_REBALANCE_STATS = {
    "attempted": 493,
    "delivered": 366,
    "cancelled_in_flight": 127,
    "completed": 313,
    "migrated_task_energy": 236180.0,
    "migration_wan_energy": 968.6999999999982,
}
#: Uplink (delivered, abandoned, busy_time, transfer_energy).
GOLDEN_FED_REBALANCE_LINK = (
    366,
    127,
    340.6449856665051,
    1021.9349569995102,
)


#: fed_adaptive preset: the learning bandit gateway (UCB) + watermark
#: hysteresis rebalancing on the saturated two-site federation.
GOLDEN_FED_ADAPTIVE_GLOBAL = {
    "total_tasks": 871,
    "completed": 524,
    "cancelled": 207,
    "missed": 140,
    "completion_rate": 0.6016073478760046,
    "cancellation_rate": 0.23765786452353616,
    "miss_rate": 0.16073478760045926,
    "on_time": 524,
    "on_time_rate": 0.6016073478760046,
    "makespan": 431.60000000000315,
    "total_energy": 408683.7170309588,
    "idle_energy": 40918.28656422716,
    "busy_energy": 367765.43046673166,
    "energy_per_completed_task": 779.9307576926694,
    "mean_wait_time": 18.929205376572977,
    "mean_response_time": 23.848717395537875,
    "throughput": 1.0521528580932853,
    "mean_utilization": 0.7210687165822731,
    "fairness_index": 0.8762828763252646,
    "completion_rate[model_update]": 0.926829268292683,
    "completion_rate[sensor_fusion]": 0.3410041841004184,
    "completion_rate[video_analytics]": 0.9148148148148149,
}
GOLDEN_FED_ADAPTIVE_EVENTS = 3534
GOLDEN_FED_ADAPTIVE_END_TIME = 498.0264948855382
#: Unlike the sticky fed_rebalance gateway, the bandit learns to offload
#: most arrivals at the gate; hysteresis keeps migrations to a trickle.
GOLDEN_FED_ADAPTIVE_ROUTING = {
    "access": {"access": 217, "relief": 654},
    "relief": {"access": 0, "relief": 0},
}
GOLDEN_FED_ADAPTIVE_MIGRATIONS = {
    "access": {"access": 0, "relief": 94},
    "relief": {"access": 21, "relief": 0},
}
GOLDEN_FED_ADAPTIVE_STATS = {
    "attempted": 115,
    "delivered": 66,
    "cancelled_in_flight": 49,
    "completed": 48,
    "migrated_task_energy": 38110.0,
    "migration_wan_energy": 169.95000000000002,
}
#: Uplink (delivered, abandoned, busy_time, transfer_energy) — offloads
#: and migrations share the same contended FIFO channel.
GOLDEN_FED_ADAPTIVE_LINK = (
    562,
    207,
    401.7500000000028,
    1205.2499999999973,
)


#: trace_replay preset: the bundled Google-style trace quantile-binned into
#: the EET's task types, deadlines synthesised from relative deadlines.
GOLDEN_TRACE_REPLAY = {
    "total_tasks": 420,
    "completed": 275,
    "cancelled": 0,
    "missed": 145,
    "completion_rate": 0.6547619047619048,
    "cancellation_rate": 0.0,
    "miss_rate": 0.34523809523809523,
    "on_time": 275,
    "on_time_rate": 0.6547619047619048,
    "makespan": 574.1221508979797,
    "total_energy": 472631.0614478588,
    "idle_energy": 4529.673712253571,
    "busy_energy": 468101.38773560524,
    "energy_per_completed_task": 1718.6584052649412,
    "mean_wait_time": 37.640216494217896,
    "mean_response_time": 45.08915016087619,
    "throughput": 0.4738950206546268,
    "mean_utilization": 0.8776446024063835,
    "fairness_index": 0.846960048310361,
    "completion_rate[heavy]": 0.9574468085106383,
    "completion_rate[light]": 0.2857142857142857,
    "completion_rate[standard]": 0.7194244604316546,
}
GOLDEN_TRACE_REPLAY_EVENTS = 1115
GOLDEN_TRACE_REPLAY_END_TIME = 580.2972979545593

#: diurnal_wan preset: background cross-traffic (diurnal sinusoid on the
#: FIFO uplink, MMPP bursts on the PS uplink) squeezing residual capacity.
GOLDEN_DIURNAL_WAN_GLOBAL = {
    "total_tasks": 653,
    "completed": 548,
    "cancelled": 7,
    "missed": 98,
    "completion_rate": 0.8392036753445635,
    "cancellation_rate": 0.010719754977029096,
    "miss_rate": 0.15007656967840735,
    "on_time": 548,
    "on_time_rate": 0.8392036753445635,
    "makespan": 327.8469120030661,
    "total_energy": 322888.08962037606,
    "idle_energy": 34278.80298247368,
    "busy_energy": 288609.2866379024,
    "energy_per_completed_task": 589.211842372949,
    "mean_wait_time": 11.521866121448824,
    "mean_response_time": 16.612781548615843,
    "throughput": 1.3962108773295847,
    "mean_utilization": 0.7095187737488584,
    "fairness_index": 0.9830159840650309,
    "completion_rate[model_update]": 1.0,
    "completion_rate[sensor_fusion]": 0.7329700272479565,
    "completion_rate[video_analytics]": 0.9629629629629629,
}
GOLDEN_DIURNAL_WAN_EVENTS = 2985
GOLDEN_DIURNAL_WAN_END_TIME = 392.4908542813487
GOLDEN_DIURNAL_WAN_ROUTING = {
    "edge_a": {"edge_a": 108, "edge_b": 117, "cloud": 115},
    "edge_b": {"edge_a": 6, "edge_b": 6, "cloud": 301},
    "cloud": {"edge_a": 0, "edge_b": 0, "cloud": 0},
}
GOLDEN_DIURNAL_WAN_TIME = 3990.1445419526212
#: Per-link (delivered, abandoned, busy_time, transfer_energy) tuples.
GOLDEN_DIURNAL_WAN_LINKS = {
    "edge_a<->cloud": (108, 7, 316.710483757665, 500.3250000000005),
    "edge_a<->edge_b": (123, 0, 5.324999999999273, 37.27499999999993),
    "edge_b<->cloud": (301, 0, 248.2305407443858, 610.2250000000001),
}


def _assert_exact(actual: dict, expected: dict) -> None:
    assert set(actual) == set(expected)
    mismatches = {
        key: (expected[key], actual[key])
        for key in expected
        if actual[key] != expected[key]
    }
    assert not mismatches, (
        "SummaryMetrics drifted from the golden pin (expected, actual): "
        f"{mismatches}"
    )


class TestGoldenSatelliteImaging:
    @pytest.fixture(scope="class")
    def result(self):
        return build_scenario("satellite_imaging", scheduler="MM", seed=41).run()

    def test_summary_exact(self, result):
        _assert_exact(result.summary.as_dict(), GOLDEN_SATELLITE_MM_SEED41)

    def test_event_count_and_end_time_exact(self, result):
        assert result.events_processed == GOLDEN_SATELLITE_EVENTS
        assert result.end_time == GOLDEN_SATELLITE_END_TIME


class TestGoldenEdgeAIFelare:
    @pytest.fixture(scope="class")
    def result(self):
        return build_scenario("edge_ai").run()

    def test_summary_exact(self, result):
        _assert_exact(result.summary.as_dict(), GOLDEN_EDGE_AI_FELARE)

    def test_event_count_and_end_time_exact(self, result):
        assert result.events_processed == GOLDEN_EDGE_AI_EVENTS
        assert result.end_time == GOLDEN_EDGE_AI_END_TIME


class TestGoldenSatelliteFaulty:
    """Failure injection pinned: exponential crash/repair on every machine."""

    @pytest.fixture(scope="class")
    def result(self):
        return build_scenario(
            "satellite_imaging", scheduler="MM", seed=41, mtbf=120.0
        ).run()

    def test_summary_exact(self, result):
        _assert_exact(
            result.summary.as_dict(), GOLDEN_SATELLITE_FAULTY_MM_SEED41
        )

    def test_event_count_and_end_time_exact(self, result):
        assert result.events_processed == GOLDEN_SATELLITE_FAULTY_EVENTS
        assert result.end_time == GOLDEN_SATELLITE_FAULTY_END_TIME


class TestGoldenEdgeCloudFederated:
    """Federated preset pinned: gateway routing included."""

    @pytest.fixture(scope="class")
    def result(self):
        return build_scenario("edge_cloud").run()

    def test_summary_exact(self, result):
        _assert_exact(result.summary.as_dict(), GOLDEN_EDGE_CLOUD_GLOBAL)

    def test_event_count_and_end_time_exact(self, result):
        assert result.events_processed == GOLDEN_EDGE_CLOUD_EVENTS
        assert result.end_time == GOLDEN_EDGE_CLOUD_END_TIME

    def test_routing_matrix_exact(self, result):
        assert result.routing == GOLDEN_EDGE_CLOUD_ROUTING
        assert result.offloaded == 626


class TestGoldenFedCongested:
    """Contended-WAN federated preset pinned: FIFO + PS link timing, link
    energy, and the congestion-aware gateway's routing are all frozen."""

    @pytest.fixture(scope="class")
    def result(self):
        return build_scenario("fed_congested").run()

    def test_summary_exact(self, result):
        _assert_exact(result.summary.as_dict(), GOLDEN_FED_CONGESTED_GLOBAL)

    def test_event_count_and_end_time_exact(self, result):
        assert result.events_processed == GOLDEN_FED_CONGESTED_EVENTS
        assert result.end_time == GOLDEN_FED_CONGESTED_END_TIME

    def test_routing_and_wan_time_exact(self, result):
        assert result.routing == GOLDEN_FED_CONGESTED_ROUTING
        assert result.wan_time_total == GOLDEN_FED_CONGESTED_WAN_TIME

    def test_link_usage_exact(self, result):
        observed = {
            label: (usage.delivered, usage.busy_time, usage.transfer_energy)
            for label, usage in result.wan_links.items()
        }
        assert observed == GOLDEN_FED_CONGESTED_LINKS

    def test_energy_rollup_identity(self, result):
        # Global machine energy == sum of per-cluster energies, and the
        # federation total == machines + every link's energy account.
        per_cluster = sum(
            s.total_energy for s in result.per_cluster.values()
        )
        assert result.summary.total_energy == pytest.approx(per_cluster)
        per_link = sum(u.total_energy for u in result.wan_links.values())
        assert result.total_energy_with_wan == pytest.approx(
            per_cluster + per_link
        )
        assert result.wan_energy_total == pytest.approx(per_link)

    def test_energy_split_accounts_every_completed_task(self, result):
        split = result.energy_split
        assert (
            split.local_completed + split.offloaded_completed
            == result.summary.completed
        )
        assert split.wan_transfer_energy > 0
        assert split.energy_per_offloaded_task > split.energy_per_local_task


class TestGoldenFedRebalance:
    """Mid-queue migration pinned: eviction counts, in-flight cancellations,
    the migration matrix, and the contended uplink's accounting are frozen."""

    @pytest.fixture(scope="class")
    def result(self):
        return build_scenario("fed_rebalance").run()

    def test_summary_exact(self, result):
        _assert_exact(result.summary.as_dict(), GOLDEN_FED_REBALANCE_GLOBAL)

    def test_event_count_and_end_time_exact(self, result):
        assert result.events_processed == GOLDEN_FED_REBALANCE_EVENTS
        assert result.end_time == GOLDEN_FED_REBALANCE_END_TIME

    def test_routing_and_migration_matrices_exact(self, result):
        assert result.routing == GOLDEN_FED_REBALANCE_ROUTING
        assert result.offloaded == 0  # the sticky gateway never spills
        assert result.migrations == GOLDEN_FED_REBALANCE_MIGRATIONS

    def test_migration_stats_exact(self, result):
        stats = result.migration_stats
        for key, expected in GOLDEN_FED_REBALANCE_STATS.items():
            assert getattr(stats, key) == expected, key

    def test_migration_conservation(self, result):
        # No migrated task lost or double-counted: every eviction either
        # reached the destination queue or was cancelled in flight, and the
        # global outcome counters still account for the whole workload.
        stats = result.migration_stats
        assert stats.attempted == stats.delivered + stats.cancelled_in_flight
        summary = result.summary
        assert (
            summary.completed + summary.cancelled + summary.missed
            == summary.total_tasks
        )

    def test_uplink_usage_exact(self, result):
        usage = result.wan_links["access<->relief"]
        assert (
            usage.delivered,
            usage.abandoned,
            usage.busy_time,
            usage.transfer_energy,
        ) == GOLDEN_FED_REBALANCE_LINK

    def test_migration_without_rebalancer_is_absent(self):
        result = build_scenario("fed_rebalance", migration=None).run()
        assert result.migrations == {}
        assert result.migration_stats.attempted == 0
        # The control arm demonstrates the unlock: the sticky gateway alone
        # completes far less of the same workload.
        assert (
            result.summary.completion_rate
            < GOLDEN_FED_REBALANCE_GLOBAL["completion_rate"] - 0.15
        )


class TestGoldenFedAdaptive:
    """The learning gateway pinned: bandit arm exploration order, reward
    feedback through the terminal-task funnel, and watermark-hysteresis
    migration triggering are all frozen bit-for-bit."""

    @pytest.fixture(scope="class")
    def result(self):
        return build_scenario("fed_adaptive").run()

    def test_summary_exact(self, result):
        _assert_exact(result.summary.as_dict(), GOLDEN_FED_ADAPTIVE_GLOBAL)

    def test_event_count_and_end_time_exact(self, result):
        assert result.events_processed == GOLDEN_FED_ADAPTIVE_EVENTS
        assert result.end_time == GOLDEN_FED_ADAPTIVE_END_TIME

    def test_routing_and_migration_matrices_exact(self, result):
        assert result.routing == GOLDEN_FED_ADAPTIVE_ROUTING
        assert result.offloaded == 654
        assert result.migrations == GOLDEN_FED_ADAPTIVE_MIGRATIONS

    def test_migration_stats_exact(self, result):
        stats = result.migration_stats
        for key, expected in GOLDEN_FED_ADAPTIVE_STATS.items():
            assert getattr(stats, key) == expected, key

    def test_uplink_usage_exact(self, result):
        usage = result.wan_links["access<->relief"]
        assert (
            usage.delivered,
            usage.abandoned,
            usage.busy_time,
            usage.transfer_energy,
        ) == GOLDEN_FED_ADAPTIVE_LINK

    def test_conservation(self, result):
        stats = result.migration_stats
        assert stats.attempted == stats.delivered + stats.cancelled_in_flight
        summary = result.summary
        assert (
            summary.completed + summary.cancelled + summary.missed
            == summary.total_tasks
        )

    def test_adaptive_beats_eet_aware_remote(self, result):
        # The learning unlock the preset exists to demonstrate: on the same
        # workload the bandit completes at least as much as the strongest
        # hand-tuned gateway.
        eet = build_scenario(
            "fed_adaptive", gateway="EET_AWARE_REMOTE"
        ).run()
        assert (
            result.summary.completion_rate
            >= eet.summary.completion_rate
        )


class TestGoldenTraceReplay:
    """The trace ingestion pipeline pinned end-to-end: column mapping,
    time rescaling, quantile binning, deadline synthesis, id reassignment."""

    @pytest.fixture(scope="class")
    def result(self):
        return build_scenario("trace_replay").run()

    def test_summary_exact(self, result):
        _assert_exact(result.summary.as_dict(), GOLDEN_TRACE_REPLAY)

    def test_event_count_and_end_time_exact(self, result):
        assert result.events_processed == GOLDEN_TRACE_REPLAY_EVENTS
        assert result.end_time == GOLDEN_TRACE_REPLAY_END_TIME

    def test_json_round_trip_replays_identically(self):
        from repro.core.config import Scenario

        scenario = build_scenario("trace_replay")
        clone = Scenario.from_json(scenario.to_json())
        assert clone.run().summary.as_dict() == GOLDEN_TRACE_REPLAY


class TestGoldenDiurnalWan:
    """Background cross-traffic pinned: the residual-capacity path through
    both disciplines (FIFO + diurnal, PS + MMPP) is frozen bit-for-bit."""

    @pytest.fixture(scope="class")
    def result(self):
        return build_scenario("diurnal_wan").run()

    def test_summary_exact(self, result):
        _assert_exact(result.summary.as_dict(), GOLDEN_DIURNAL_WAN_GLOBAL)

    def test_event_count_and_end_time_exact(self, result):
        assert result.events_processed == GOLDEN_DIURNAL_WAN_EVENTS
        assert result.end_time == GOLDEN_DIURNAL_WAN_END_TIME

    def test_routing_and_wan_time_exact(self, result):
        assert result.routing == GOLDEN_DIURNAL_WAN_ROUTING
        assert result.wan_time_total == GOLDEN_DIURNAL_WAN_TIME

    def test_link_usage_exact(self, result):
        triples = {
            label: (u.delivered, u.abandoned, u.busy_time, u.transfer_energy)
            for label, u in result.wan_links.items()
        }
        assert triples == GOLDEN_DIURNAL_WAN_LINKS

    def test_cross_traffic_changes_the_outcome(self):
        # Strip the cross-traffic specs from the JSON form and re-run: the
        # unmodulated twin must complete strictly more of the same workload
        # (the background load only ever removes capacity).
        from repro.core.config import Scenario

        spec = build_scenario("diurnal_wan").to_dict()
        for link in spec["federation"]["topology"]["links"].values():
            link.pop("cross_traffic", None)
        plain = Scenario.from_dict(spec).run()
        assert (
            plain.summary.completed
            > GOLDEN_DIURNAL_WAN_GLOBAL["completed"]
        )


class TestConservation:
    """No task lost or duplicated — per cluster and globally.

    arrivals == completed + cancelled + missed must hold through offloads
    (WAN in-transit cancellations) and machine failures (requeues).
    """

    def test_single_cluster_with_failures(self):
        result = build_scenario(
            "satellite_imaging", scheduler="MM", seed=41, mtbf=120.0
        ).run()
        summary = result.summary
        assert (
            summary.completed + summary.cancelled + summary.missed
            == summary.total_tasks
        )

    def test_federated_per_cluster_and_global(self):
        result = build_scenario("edge_cloud").run()
        arrivals = result.arrivals_by_cluster()
        for name, summary in result.per_cluster.items():
            assert (
                summary.completed + summary.cancelled + summary.missed
                == summary.total_tasks
            )
            assert summary.total_tasks == arrivals[name]
        total = result.summary
        assert (
            total.completed + total.cancelled + total.missed
            == total.total_tasks
        )
        assert sum(arrivals.values()) == total.total_tasks


class TestGoldenStability:
    """The same seed must reproduce the identical summary twice in-process."""

    def test_back_to_back_runs_identical(self):
        scenario = build_scenario("satellite_imaging", scheduler="MM", seed=41)
        first = scenario.run()
        second = scenario.run()
        assert first.summary == second.summary
        assert first.events_processed == second.events_processed
