"""Reproducibility: a scenario seed fully determines every artifact."""


from repro.scenarios import edge_ai, satellite_imaging


class TestSeedDeterminism:
    def test_identical_summaries(self, scenario_factory):
        scenario = scenario_factory("MM", queue_capacity=2)
        a = scenario.run().summary.as_dict()
        b = scenario.run().summary.as_dict()
        assert a == b

    def test_identical_task_records(self, scenario_factory):
        scenario = scenario_factory("FELARE", queue_capacity=2)
        assert scenario.run().task_records == scenario.run().task_records

    def test_identical_reports_csv(self, scenario_factory):
        scenario = scenario_factory("MECT")
        a = scenario.run().reports.full_report().to_csv()
        b = scenario.run().reports.full_report().to_csv()
        assert a == b

    def test_different_seeds_differ(self, scenario_factory):
        a = scenario_factory("MECT", seed=1).run().task_records
        b = scenario_factory("MECT", seed=2).run().task_records
        assert a != b

    def test_canned_scenarios_deterministic(self):
        a = satellite_imaging(duration=100.0).run().summary.as_dict()
        b = satellite_imaging(duration=100.0).run().summary.as_dict()
        assert a == b

    def test_edge_ai_with_noise_deterministic(self):
        from dataclasses import replace

        scenario = replace(
            edge_ai(duration=100.0),
            execution_model={"kind": "lognormal", "sigma": 0.3},
        )
        assert (
            scenario.run().summary.as_dict()
            == scenario.run().summary.as_dict()
        )

    def test_stepped_equals_run(self, scenario_factory):
        """Event-by-event stepping produces the same result as run()."""
        scenario = scenario_factory("MM", queue_capacity=3)
        stepped = scenario.build_simulator()
        while stepped.step() is not None:
            pass
        ran = scenario.build_simulator()
        ran.run()
        assert (
            stepped.result().task_records == ran.result().task_records
        )
