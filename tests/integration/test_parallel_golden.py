"""Serial ≡ parallel on the registered federated presets, bit for bit.

`tests/integration/test_golden_metrics.py` pins the serial engine's exact
summaries; this module pins the *other* equality: for every federated preset
(run under a state-blind gateway), the window-parallel engine must reproduce
the serial result exactly — summaries, per-cluster metrics, event counts,
end times, routing, WAN accounting and energy. Together the two suites give
the transitive golden guarantee the parallel path ships under: parallel ≡
serial ≡ committed goldens.

Presets whose default gateway reads shard state run here with RANDOM_SPLIT
(the parallel engine refuses state-reading gateways by design); edge_cloud
additionally needs explicit routing weights because its cloud site has
arrival weight 0.
"""

import pytest

from repro.scenarios import build_scenario

# (preset, factory overrides) — every federated preset in the registry that
# the parallel engine can legally run. fed_rebalance is absent by design:
# mid-queue migration is a zero-lookahead coupling and is refused.
FEDERATED_PRESETS = [
    ("edge_cloud", {"gateway": "RANDOM_SPLIT",
                    "gateway_params": {"weights": [0.6, 0.4]}}),
    ("geo_3site", {"gateway": "RANDOM_SPLIT"}),
    ("fed_heavytail", {"gateway": "RANDOM_SPLIT"}),
    ("fed_congested", {"gateway": "RANDOM_SPLIT"}),
    ("diurnal_wan", {"gateway": "RANDOM_SPLIT"}),
    # The federation-scale preset, shrunk to test-tier runtime (8 sites,
    # one simulated minute) — same code paths, ~1/20 the events.
    ("scale_federation", {"duration": 60.0, "n_clusters": 8}),
]


def _fingerprint(result):
    return {
        "summary": result.summary.as_dict(),
        "per_cluster": {
            name: s.as_dict() for name, s in result.per_cluster.items()
        },
        "events_processed": result.events_processed,
        "end_time": result.end_time,
        "routing": result.routing,
        "offloaded": result.offloaded,
        "wan_time_total": result.wan_time_total,
        "energy": result.energy,
        "wan_delivered": {
            name: u.delivered for name, u in result.wan_links.items()
        },
    }


@pytest.mark.parametrize(
    "preset,overrides",
    FEDERATED_PRESETS,
    ids=[name for name, _ in FEDERATED_PRESETS],
)
def test_parallel_reproduces_serial_preset(preset, overrides):
    serial = build_scenario(preset, **overrides).run()
    parallel = (
        build_scenario(preset, **overrides)
        .build_simulator(parallel_workers=2)
        .run()
    )
    assert _fingerprint(parallel) == _fingerprint(serial)


def test_worker_count_never_changes_a_preset():
    """The shard partition is invisible: 1, 2 and 4 workers agree exactly."""
    prints = []
    for workers in (1, 2, 4):
        scenario = build_scenario(
            "scale_federation", duration=60.0, n_clusters=8
        )
        result = scenario.build_simulator(parallel_workers=workers).run()
        prints.append(_fingerprint(result))
    assert prints[0] == prints[1] == prints[2]
