"""Keep the README honest: its quickstart snippet must actually run."""

import re
from pathlib import Path


README = Path(__file__).resolve().parents[2] / "README.md"


def _python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_readme_exists_and_mentions_the_paper(self):
        text = README.read_text(encoding="utf-8")
        assert "E2C" in text
        assert "2303.10901" in text

    def test_quickstart_block_executes(self, tmp_path, monkeypatch):
        text = README.read_text(encoding="utf-8")
        blocks = _python_blocks(text)
        assert blocks, "README must contain a python quickstart block"
        monkeypatch.chdir(tmp_path)  # reports/ output lands in tmp
        namespace: dict = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
        result = namespace["result"]
        assert 0.0 <= result.summary.completion_rate <= 1.0
        assert (tmp_path / "reports").exists()

    def test_examples_listed_in_readme_exist(self):
        text = README.read_text(encoding="utf-8")
        examples_dir = README.parent / "examples"
        for name in re.findall(r"`([a-z_]+\.py)`", text):
            assert (examples_dir / name).exists(), f"README references {name}"

    def test_cli_commands_in_readme_are_real(self):
        import argparse

        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        text = README.read_text(encoding="utf-8")
        for command in re.findall(r"e2c-sim (\w+)", text):
            # every subcommand the README shows must parse
            assert command in subparsers.choices, (
                f"README references unknown subcommand {command}"
            )
