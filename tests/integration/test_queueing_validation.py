"""Validation against queueing theory: the simulator vs closed forms.

Ground truth independent of the paper: a single machine fed by a Poisson
process with no deadlines is an M/G/1 queue, so the simulated mean waiting
time must match Pollaczek–Khinchine. Deterministic EETs give M/D/1;
exponential runtime noise (Gamma with CoV 1) gives M/M/1.
"""

import math

import numpy as np
import pytest

from repro.core.simulator import Simulator
from repro.machines.cluster import Cluster
from repro.machines.eet import EETMatrix
from repro.machines.execution import GammaExecution
from repro.metrics.queueing import (
    md1_mean_wait,
    mm1_mean_wait,
    utilization,
)
from repro.scheduling.registry import create_scheduler
from repro.tasks.arrivals import PoissonProcess
from repro.tasks.task import Task
from repro.tasks.task_type import TaskType
from repro.tasks.workload import Workload

SERVICE = 1.0
N_TASKS = 8000
WARMUP = 500


def simulate_single_queue(arrival_rate, execution_model=None, seed=1234):
    task_type = TaskType("T", 0)
    eet = EETMatrix(np.array([[SERVICE]]), [task_type], ["M"])
    # The arrival stream and the simulator's service-noise stream must be
    # independent: sharing one seed correlates inter-arrival gaps with
    # service draws and biases the queue (we learned this the hard way).
    arrivals = PoissonProcess(rate=arrival_rate).generate(
        0.0, (N_TASKS * 1.3) / arrival_rate, rng=seed + 990_001
    )[:N_TASKS]
    assert arrivals.size == N_TASKS
    tasks = [
        Task(id=i, task_type=task_type, arrival_time=float(a), deadline=math.inf)
        for i, a in enumerate(arrivals)
    ]
    workload = Workload(task_types=[task_type], tasks=tasks)
    sim = Simulator(
        cluster=Cluster.build(eet, {"M": 1}),
        workload=workload,
        scheduler=create_scheduler("FCFS"),
        execution_model=execution_model,
        seed=seed,
    )
    sim.run()
    waits = [t.wait_time for t in tasks[WARMUP:]]
    assert all(w is not None for w in waits)
    return float(np.mean(waits))


class TestMD1:
    @pytest.mark.parametrize("rho", [0.3, 0.5, 0.7])
    def test_mean_wait_matches_pollaczek_khinchine(self, rho):
        lam = rho / SERVICE
        measured = simulate_single_queue(lam)
        expected = md1_mean_wait(lam, SERVICE)
        assert measured == pytest.approx(expected, rel=0.12)


def simulate_mm1_mean(lam: float, seeds=(1, 2, 3, 4)) -> float:
    """M/M/1 waits are long-range dependent; average several seeds."""
    return float(
        np.mean(
            [
                simulate_single_queue(
                    lam, execution_model=GammaExecution(cov=1.0), seed=seed
                )
                for seed in seeds
            ]
        )
    )


class TestMM1:
    @pytest.mark.parametrize("rho", [0.3, 0.5])
    def test_mean_wait_matches_mm1(self, rho):
        lam = rho / SERVICE
        measured = simulate_mm1_mean(lam)
        expected = mm1_mean_wait(lam, SERVICE)
        assert measured == pytest.approx(expected, rel=0.15)

    def test_mm1_waits_exceed_md1(self):
        """Service variability hurts: W(M/M/1) = 2 × W(M/D/1)."""
        lam = 0.5
        md1 = simulate_single_queue(lam)
        mm1 = simulate_mm1_mean(lam)
        assert mm1 > md1 * 1.5


class TestFormulas:
    def test_md1_closed_form(self):
        # ρ=0.5, S=1: Wq = 0.5·1/(2·0.5) = 0.5
        assert md1_mean_wait(0.5, 1.0) == pytest.approx(0.5)

    def test_mm1_closed_form(self):
        # λ=0.5, μ=1: Wq = 0.5/(1·0.5) = 1.0
        assert mm1_mean_wait(0.5, 1.0) == pytest.approx(1.0)

    def test_mm1_is_twice_md1(self):
        assert mm1_mean_wait(0.6, 1.0) == pytest.approx(
            2 * md1_mean_wait(0.6, 1.0)
        )

    def test_unstable_queue_rejected(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            md1_mean_wait(1.2, 1.0)

    def test_utilization(self):
        assert utilization(0.25, 2.0) == 0.5

    def test_negative_variance_rejected(self):
        from repro.core.errors import ConfigurationError
        from repro.metrics.queueing import mg1_mean_wait

        with pytest.raises(ConfigurationError):
            mg1_mean_wait(0.5, 1.0, 0.5)

    def test_mean_in_system(self):
        from repro.metrics.queueing import mm1_mean_in_system

        assert mm1_mean_in_system(0.5, 1.0) == pytest.approx(1.0)
