"""Acceptance: a 3-scenario x 4-scheduler x 2-seed campaign via the CLI.

The parallel result table must be byte-identical to the serial one for the
same campaign seed — the determinism contract of ``repro.experiments``.
"""

from repro.cli import main
from repro.experiments import CampaignSpec


def test_sweep_parallel_table_byte_identical_to_serial(tmp_path, capsys):
    spec_path = tmp_path / "campaign.json"
    CampaignSpec(
        name="acceptance",
        scenarios=[
            {"name": "satellite_imaging", "overrides": {"duration": 120.0}},
            {"name": "edge_ai", "overrides": {"duration": 80.0}},
            {"name": "classroom_homogeneous", "overrides": {"duration": 120.0}},
        ],
        schedulers=["FCFS", "MECT", "MM", "MSD"],
        seeds=[1, 2],
        seed=2023,
    ).to_json(spec_path)

    parallel_csv = tmp_path / "parallel.csv"
    serial_csv = tmp_path / "serial.csv"
    assert main(
        [
            "sweep",
            "--spec", str(spec_path),
            "--workers", "4",
            "--save-table", str(parallel_csv),
        ]
    ) == 0
    assert main(
        [
            "sweep",
            "--spec", str(spec_path),
            "--serial",
            "--save-table", str(serial_csv),
        ]
    ) == 0
    out = capsys.readouterr().out
    assert "3 scenario(s) x 4 scheduler(s) x 2 seed(s) = 24 runs" in out
    assert parallel_csv.read_bytes() == serial_csv.read_bytes()
    # 24 data rows + header
    assert len(parallel_csv.read_text(encoding="utf-8").splitlines()) == 25
