"""Golden pins for the hierarchical federation presets.

Same discipline as the flat goldens: spec JSON, summary metrics, routing
matrix and the per-level tree rollup are pinned as sha256 fingerprints of
canonical JSON. Any engine change that perturbs relay ordering, shared
uplink contention, rollup folding or spec serialisation shows up here as
an exact-hash failure. Re-pin only with an intentional, explained
behaviour change.
"""

import hashlib
import json

import pytest

from repro.scenarios import build_scenario


def _sha(obj):
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


# preset -> (spec, summary, routing, rollup) sha256 fingerprints.
HIERARCHY_GOLDENS = {
    "hier_3region": (
        "adf47278d66286bd9de499ff1e1befd96e9db7cd9799dc56d7db86e541e96036",
        "5b3929c2e936c477b762c0280bcdda46563ab29bdeeb7b0dfaffb310cf74a5c2",
        "7d2f153fdce32666fbb9c38967b54e98c5229d5e2c54ec206a23d6baf8e914d5",
        "3703e561505e5b3405c48c8f20b8bf358b23b44f5f4ffe0cc06e67b4dd72fe93",
    ),
    "hier_deep": (
        "e4b9fc490dd8a30341f916fc1ad4f6c16b4b22f6b94b5f1a2b3c5f0c5020f552",
        "cbd2063ad4f91589c84c05e24e89d31a5fed3685fc2d5ee43c77a202fc7570e8",
        "cd0e8ad3a845524b10908a583cab816c531fea181ff01b0f9e2f5a950577a352",
        "fe3a5d552578cb8b00456c333d5bc3b2ab70af40d527693de843e91712fdd355",
    ),
}


@pytest.mark.parametrize("preset", sorted(HIERARCHY_GOLDENS))
def test_hierarchy_preset_matches_golden(preset):
    scenario = build_scenario(preset)
    result = scenario.run()
    got = (
        _sha(scenario.to_dict()),
        _sha(result.summary.as_dict()),
        _sha(result.routing),
        _sha(result.tree.as_dict()),
    )
    want = HIERARCHY_GOLDENS[preset]
    assert got == want, (
        f"{preset} diverged from golden "
        f"(spec/summary/routing/rollup): {got} != {want}"
    )


@pytest.mark.parametrize("preset", sorted(HIERARCHY_GOLDENS))
def test_hierarchy_preset_spec_roundtrips(preset):
    """A golden-pinned preset survives JSON round-trip spec-identically
    (the pinned spec hash is therefore reproducible from serialised form).
    """
    from repro.core.config import Scenario

    scenario = build_scenario(preset)
    rebuilt = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
    assert _sha(rebuilt.to_dict()) == _sha(scenario.to_dict())


@pytest.mark.parametrize("preset", sorted(HIERARCHY_GOLDENS))
def test_hierarchy_preset_is_deterministic(preset):
    a = build_scenario(preset).run()
    b = build_scenario(preset).run()
    assert a.summary.as_dict() == b.summary.as_dict()
    assert a.routing == b.routing
    assert a.tree.as_dict() == b.tree.as_dict()
