"""Edge cases across subsystem boundaries."""

import numpy as np
import pytest

from repro.core.config import Scenario
from repro.core.simulator import Simulator
from repro.machines.cluster import Cluster
from repro.machines.eet import EETMatrix
from repro.machines.failures import FailureModel
from repro.scheduling.registry import create_scheduler
from repro.tasks.task import Task, TaskStatus
from repro.tasks.task_type import TaskType
from repro.tasks.workload import Workload


def one_type_system(eet_values, machine_names):
    task_type = TaskType("T", 0)
    eet = EETMatrix(
        np.array([eet_values], dtype=float), [task_type], machine_names
    )
    return task_type, eet


class TestAllMachinesDown:
    def test_tasks_wait_out_a_total_outage(self):
        """Both machines crash before the task arrives; it waits and runs
        after repair instead of being lost."""
        task_type, eet = one_type_system([5.0, 5.0], ["A", "B"])
        task = Task(id=0, task_type=task_type, arrival_time=1.0, deadline=1e9)
        workload = Workload(task_types=[task_type], tasks=[task])
        cluster = Cluster.build(eet, {"A": 1, "B": 1})
        sim = Simulator(
            cluster=cluster,
            workload=workload,
            scheduler=create_scheduler("MECT"),
        )
        # Crash both machines manually at t=0.5 via direct state, simulating
        # an outage that predates the arrival.
        for machine in cluster:
            machine.fail(0.0)
        # Let the engine deliver the arrival; nothing can accept the task.
        sim.run(until=2.0)
        assert task.status is TaskStatus.IN_BATCH_QUEUE
        # Repair one machine; the next scheduling trigger maps the task.
        cluster[0].repair(2.0)
        sim.batch_queue  # task still waiting
        # A fresh arrival-less pass happens on the next event; force one by
        # running to completion of the remaining event stream.
        sim._scheduling_pass()
        sim.run()
        assert task.status is TaskStatus.COMPLETED


class TestEmptyWorkloadWithFailures:
    def test_no_failure_events_scheduled_for_empty_workload(self, eet_3x2):
        from repro.tasks.workload import Workload as W

        sim = Simulator(
            cluster=Cluster.build(eet_3x2, {"M1": 1, "M2": 1}),
            workload=W(task_types=eet_3x2.task_types, tasks=[]),
            scheduler=create_scheduler("MECT"),
            failure_model=FailureModel(mtbf=1.0, mttr=1.0),
        )
        result = sim.run()
        assert result.events_processed == 0


class TestCombinedExtensions:
    def test_network_plus_overhead_delays_compose(self):
        task_type = TaskType("T", 0, data_in=10.0)
        eet = EETMatrix(np.array([[4.0]]), [task_type], ["M"])
        task = Task(id=0, task_type=task_type, arrival_time=0.0, deadline=99.0)
        scenario = Scenario(
            eet=eet,
            machine_counts={"M": 1},
            scheduler="MECT",
            workload=Workload(task_types=[task_type], tasks=[task]),
            network={"M": (1.0, 10.0)},          # 1 s latency + 1 s transfer
            enable_network=True,
            scheduling_overhead={"per_pass": 0.5},
        )
        result = scenario.run()
        (record,) = result.task_records
        # 0.5 decision + 1.0 latency + 10/10 transfer = 2.5 s before start.
        assert record["start_time"] == pytest.approx(2.5)
        assert record["completion_time"] == pytest.approx(6.5)

    def test_noise_failures_overhead_conserve(self, eet_3x2):
        scenario = Scenario(
            eet=eet_3x2,
            machine_counts={"M1": 2, "M2": 1},
            scheduler="MM",
            queue_capacity=2,
            generator={"duration": 300.0, "intensity": 1.5},
            execution_model={"kind": "gamma", "cov": 0.3},
            failure_model=FailureModel(mtbf=60.0, mttr=10.0),
            scheduling_overhead={"per_pass": 0.05},
            seed=13,
        )
        s = scenario.run().summary
        assert s.completed + s.cancelled + s.missed == s.total_tasks
        assert s.total_tasks > 0


class TestSingleMachineSingleTask:
    def test_minimal_universe(self):
        task_type, eet = one_type_system([1.0], ["M"])
        task = Task(id=0, task_type=task_type, arrival_time=0.0, deadline=2.0)
        sim = Simulator(
            cluster=Cluster.build(eet, {"M": 1}),
            workload=Workload(task_types=[task_type], tasks=[task]),
            scheduler=create_scheduler("MM"),
            queue_capacity=1,
        )
        result = sim.run()
        assert result.summary.completed == 1
        assert result.summary.makespan == 1.0


class TestZeroCapacityBatchQueue:
    def test_capacity_zero_cancels_everything(self):
        """Machine queues of size 0 can never admit work: with finite
        deadlines everything cancels (and conservation still holds)."""
        task_type, eet = one_type_system([1.0], ["M"])
        tasks = [
            Task(id=i, task_type=task_type, arrival_time=0.0, deadline=5.0)
            for i in range(4)
        ]
        sim = Simulator(
            cluster=Cluster.build(eet, {"M": 1}),
            workload=Workload(task_types=[task_type], tasks=tasks),
            scheduler=create_scheduler("MM"),
            queue_capacity=0,
        )
        result = sim.run()
        assert result.summary.cancelled == 4
        assert result.summary.completed == 0
