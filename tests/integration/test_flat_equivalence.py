"""Flat federations are byte-identical to pre-hierarchy main.

The hierarchy PR generalised shared engine surfaces — ``Event.cluster``
grew tuple paths, ``WanTransfer`` grew a delivery tag, the simulator grew
gateway/WAN construction hooks, ``FederationSpec`` grew nested children —
all of which MUST be invisible to existing flat federations. This wall
proves it: every federated preset's spec JSON, summary metrics and routing
matrix are pinned to sha256 fingerprints captured on main *before* any
hierarchy code landed. A mismatch here means the generalisation leaked
into flat behaviour (changed event ordering, altered WAN accounting,
perturbed spec serialisation) and is a regression, not a re-pin.

The serial ≡ parallel golden suite (``test_parallel_golden.py``) is
re-asserted on the legacy presets as part of the wall: hierarchy refusal
in the parallel engine must not disturb the flat parallel path either.
"""

import hashlib
import json

import pytest

from repro.scenarios import build_scenario

from test_parallel_golden import FEDERATED_PRESETS, _fingerprint


def _sha(obj):
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


# sha256 fingerprints of (scenario.to_dict(), summary.as_dict(), routing)
# captured on main at 1645cfe, before the hierarchy changes. Do NOT re-pin
# these to make a failure pass: flat presets changing hash IS the bug.
PRE_HIERARCHY_FINGERPRINTS = {
    "edge_cloud": (
        "eb694cfea17cafd4c81d245252f3de67c6ef40818efb5c742a77d9a6f5db8b33",
        "955410230f24128c8dce81ab714e62a75703f954b0f8ed68d0a1e0ff395a0319",
        "304e6d3945f08808c8cfae3ce27f2fde682bb6be0b2b428979ea9c2811dd12c6",
    ),
    "geo_3site": (
        "2697fceff7243cda33d49b7e9db5ce48ec848dc011479ca92a36b7cbd227654f",
        "34311e4b046d5173c08fed05d232b3d77a8a683967f76b3d6cdd8b8c6e628d31",
        "b4c5c86b053e5a82bc217edfebf05f6ff795891da29e7c295097368a9e282c1f",
    ),
    "fed_heavytail": (
        "ae018cdfb1612b4fcfb120313c3ea4ee7055a578c50dc8eb3ed31d25d2f2f31a",
        "d5f21c57af2b70b58463ca435360ba53e29b43ff1382b4cd628fb4fd30896564",
        "3985a8560d94c2d48e88e1b58b8e5d70ce1b9dadbc38d7297c421a6f303c0557",
    ),
    "fed_congested": (
        "6132c2b821025f7130932d87746fc612a1d8da5c3b41a4a357cce044c08efd63",
        "74dce46f0745899c6de7bbafb1216588742ca6f079fadcc07ab34786d0f76662",
        "f1824e7cf2a07df0b95e65f69f1289ba118fae8b79b144497ab56b208f17968a",
    ),
    "fed_rebalance": (
        "60a0bfb0a3cc23a9dd5722c19faa96d7d1e4c6b434d502aab05676557271bdbe",
        "3cf23fe174425441781ee4560563e1d6daee36fc4ede98da4200616983ede077",
        "e00d66ac8bbc07a7c854b3d80a04da4d49d95c51c9c981f716cbfa8ebda158d8",
    ),
    "fed_adaptive": (
        "7e945eb20e28d49e46fe7225d4249e1d6016bb3de846065224d40cace5310dd5",
        "d3c6091e95afd87578ae9b2d2f26166a7eab4f903064a2272a7e8f585eb454e4",
        "fe8f8aa360ac0bf5959e88f276f11651017047a053a9b2ac90daf3f2c62114f0",
    ),
    "diurnal_wan": (
        "3dbdbce7166c56c42422084678980628d1f0a46c042fdde51fa29d5316ae94ba",
        "5ba49b168ace8586fb38c76c9086da1127ca4eae267723cd4cacbabf3605a0c4",
        "2ea6e3b2f8ecb70fc3ef7b10583c2420ee320f182f4ad80661b5a3b9e810a60c",
    ),
    "scale_federation": (
        "d8afc4f7d73ae1cd0a4d1fd19eef3748ae399e168dfa8c2a6fafe61e2c0ea475",
        "10b0e73bae98bf6334a82d629dfc2ea175705662c1af49a5485e4cb22f93fa40",
        "e749eaea1b8a72281a4257f4b8e22afffacbb98710b18dad2288617864cdaaca",
    ),
}

# Factory overrides matching the pre-PR capture runs (preset defaults,
# except the scale preset which was captured at test-tier size).
_OVERRIDES = {"scale_federation": {"duration": 60.0, "n_clusters": 8}}


@pytest.mark.parametrize("preset", sorted(PRE_HIERARCHY_FINGERPRINTS))
def test_flat_preset_matches_pre_hierarchy_main(preset):
    scenario = build_scenario(preset, **_OVERRIDES.get(preset, {}))
    result = scenario.run()
    got = (
        _sha(scenario.to_dict()),
        _sha(result.summary.as_dict()),
        _sha(result.routing),
    )
    want = PRE_HIERARCHY_FINGERPRINTS[preset]
    assert got == want, (
        f"{preset} diverged from pre-hierarchy main "
        f"(spec/summary/routing): {got} != {want}"
    )


@pytest.mark.parametrize("preset", sorted(PRE_HIERARCHY_FINGERPRINTS))
def test_flat_preset_has_no_tree(preset):
    """Flat results must not grow a rollup: ``tree`` stays ``None``."""
    result = build_scenario(preset, **_OVERRIDES.get(preset, {})).run()
    assert result.tree is None


@pytest.mark.parametrize(
    "preset,overrides",
    FEDERATED_PRESETS,
    ids=[name for name, _ in FEDERATED_PRESETS],
)
def test_serial_parallel_still_agree_on_legacy_presets(preset, overrides):
    """Wall half two: the parallel engine's hierarchy refusal must leave
    the flat parallel path bit-identical to serial, same as before."""
    serial = build_scenario(preset, **overrides).run()
    parallel = (
        build_scenario(preset, **overrides)
        .build_simulator(parallel_workers=2)
        .run()
    )
    assert _fingerprint(parallel) == _fingerprint(serial)
