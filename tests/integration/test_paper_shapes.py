"""The paper's qualitative claims, verified on moderate-size runs.

§4: "The expected results is that higher intensity workloads lead to a lower
completion rate"; "why MECT performs better than FCFS"; "why the batch
policies outperform immediate scheduling policies for heterogeneous systems".
These are the shapes Figures 5–7 exist to teach; the benchmarks regenerate
the full figures, these tests pin the shapes at reduced scale.
"""

import pytest

from repro.education.assignment import (
    AssignmentConfig,
    build_heterogeneous_eet,
    run_completion_sweep,
)

CONFIG = AssignmentConfig(duration=400.0, replications=3, seed=2023)


@pytest.fixture(scope="module")
def immediate_het():
    return run_completion_sweep(
        build_heterogeneous_eet(CONFIG),
        ["FCFS", "MECT", "MEET"],
        config=CONFIG,
    )


@pytest.fixture(scope="module")
def batch_het():
    return run_completion_sweep(
        build_heterogeneous_eet(CONFIG),
        ["MM", "MMU", "MSD"],
        config=CONFIG,
        batch=True,
    )


class TestIntensityMonotonicity:
    def test_immediate_policies_decline(self, immediate_het):
        for policy in ("FCFS", "MECT", "MEET"):
            low = immediate_het.mean("low", policy)
            medium = immediate_het.mean("medium", policy)
            high = immediate_het.mean("high", policy)
            assert low >= medium - 0.02
            assert medium >= high - 0.02
            assert low > high  # strict decline across the full sweep

    def test_batch_policies_decline(self, batch_het):
        for policy in ("MM", "MMU", "MSD"):
            assert batch_het.mean("low", policy) > batch_het.mean(
                "high", policy
            )


class TestPolicyOrdering:
    def test_mect_beats_fcfs_on_heterogeneous(self, immediate_het):
        """The §4 learning outcome. The gap is clear at medium intensity
        (the regime the lesson targets); at extreme oversubscription both
        policies collapse and the ordering is noise-level, so only a
        no-worse-than-tolerance bound applies there."""
        assert immediate_het.mean("medium", "MECT") >= immediate_het.mean(
            "medium", "FCFS"
        )
        assert immediate_het.mean("high", "MECT") >= (
            immediate_het.mean("high", "FCFS") - 0.05
        )

    def test_batch_beats_immediate_at_high_intensity(
        self, immediate_het, batch_het
    ):
        """'why the batch policies outperform immediate scheduling policies
        for heterogeneous systems' — compared at the saturation point."""
        best_immediate = max(
            immediate_het.mean("high", p) for p in ("FCFS", "MECT", "MEET")
        )
        best_batch = max(
            batch_het.mean("high", p) for p in ("MM", "MMU", "MSD")
        )
        assert best_batch > best_immediate

    def test_low_intensity_everyone_does_well(self, immediate_het):
        for policy in ("FCFS", "MECT"):
            assert immediate_het.mean("low", policy) > 0.9
