"""Shared fixtures: small deterministic systems used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import Scenario
from repro.machines.cluster import Cluster
from repro.machines.eet import EETMatrix
from repro.machines.power import PowerProfile
from repro.tasks.task import Task
from repro.tasks.task_type import TaskType
from repro.tasks.workload import Workload


@pytest.fixture
def task_types() -> list[TaskType]:
    return [TaskType("T1", 0), TaskType("T2", 1), TaskType("T3", 2)]


@pytest.fixture
def eet_3x2(task_types) -> EETMatrix:
    """3 task types × 2 machine types; M1 wins T1/T3, M2 wins T2."""
    return EETMatrix(
        np.array([[4.0, 10.0], [9.0, 3.0], [5.0, 6.0]]),
        task_types,
        ["M1", "M2"],
    )


@pytest.fixture
def eet_homogeneous(task_types) -> EETMatrix:
    return EETMatrix(
        np.array([[5.0, 5.0, 5.0], [8.0, 8.0, 8.0], [3.0, 3.0, 3.0]]),
        task_types,
        ["A", "B", "C"],
    )


@pytest.fixture
def cluster_3x2(eet_3x2) -> Cluster:
    return Cluster.build(eet_3x2, {"M1": 1, "M2": 1})


@pytest.fixture
def powered_cluster(eet_3x2) -> Cluster:
    return Cluster.build(
        eet_3x2,
        {"M1": 1, "M2": 1},
        power_profiles={
            "M1": PowerProfile(idle_watts=10.0, busy_watts=100.0),
            "M2": PowerProfile(idle_watts=5.0, busy_watts=50.0),
        },
    )


def make_task(
    task_type: TaskType,
    task_id: int = 0,
    arrival: float = 0.0,
    deadline: float = float("inf"),
) -> Task:
    return Task(
        id=task_id, task_type=task_type, arrival_time=arrival, deadline=deadline
    )


@pytest.fixture
def make_workload(task_types):
    """Factory: build a workload from (type_idx, arrival, deadline) triples."""

    def _build(triples) -> Workload:
        tasks = [
            Task(
                id=i,
                task_type=task_types[ti],
                arrival_time=arr,
                deadline=dl,
            )
            for i, (ti, arr, dl) in enumerate(triples)
        ]
        return Workload(task_types=list(task_types), tasks=tasks)

    return _build


@pytest.fixture
def scenario_factory(eet_3x2):
    """Factory for small generator-based scenarios."""

    def _build(scheduler: str = "MECT", **overrides) -> Scenario:
        params = dict(
            eet=eet_3x2,
            machine_counts={"M1": 1, "M2": 1},
            scheduler=scheduler,
            generator={"duration": 120.0, "intensity": "medium"},
            seed=99,
        )
        params.update(overrides)
        return Scenario(**params)

    return _build
