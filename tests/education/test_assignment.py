"""Class-assignment driver: system builders and completion sweeps.

Uses a deliberately small configuration (short duration, 2 replications) so
the full Fig-5/6/7 pipelines stay fast; the benchmarks run the full-size
versions.
"""

import pytest

from repro.core.errors import ConfigurationError
from repro.education.assignment import (
    AssignmentConfig,
    build_heterogeneous_eet,
    build_homogeneous_eet,
    figure5,
    figure6,
    figure7,
    run_completion_sweep,
)

FAST = AssignmentConfig(duration=150.0, replications=2, seed=11)


class TestSystemBuilders:
    def test_homogeneous_is_homogeneous(self):
        assert build_homogeneous_eet(FAST).is_homogeneous()

    def test_heterogeneous_is_not(self):
        assert not build_heterogeneous_eet(FAST).is_homogeneous()

    def test_shapes(self):
        eet = build_heterogeneous_eet(FAST)
        assert eet.n_task_types == FAST.n_task_types
        assert eet.n_machine_types == FAST.n_machines

    def test_deterministic_for_seed(self):
        assert build_heterogeneous_eet(FAST) == build_heterogeneous_eet(FAST)


class TestSweep:
    def test_chart_covers_grid(self):
        fig = run_completion_sweep(
            build_heterogeneous_eet(FAST), ["FCFS", "MECT"], config=FAST
        )
        assert fig.chart.groups == ["low", "medium", "high"]
        assert fig.chart.series == ["FCFS", "MECT"]

    def test_rows_per_cell(self):
        fig = run_completion_sweep(
            build_heterogeneous_eet(FAST), ["FCFS"], config=FAST
        )
        assert len(fig.rows) == 3 * 1 * FAST.replications

    def test_mean_accessor(self):
        fig = run_completion_sweep(
            build_heterogeneous_eet(FAST), ["FCFS"], config=FAST
        )
        value = fig.mean("low", "FCFS")
        assert 0.0 <= value <= 1.0
        assert fig.chart.get("low", "FCFS") == pytest.approx(100.0 * value)

    def test_mean_unknown_cell_rejected(self):
        fig = run_completion_sweep(
            build_heterogeneous_eet(FAST), ["FCFS"], config=FAST
        )
        with pytest.raises(ConfigurationError):
            fig.mean("low", "MECT")

    def test_completion_declines_with_intensity(self):
        fig = run_completion_sweep(
            build_heterogeneous_eet(FAST), ["MECT"], config=FAST
        )
        assert fig.mean("low", "MECT") >= fig.mean("high", "MECT")


class TestFigurePipelines:
    def test_figure5_policies(self):
        fig = figure5(FAST)
        assert fig.chart.series == ["FCFS", "MECT", "MEET"]
        assert "homogeneous" in fig.title

    def test_figure6_policies(self):
        fig = figure6(FAST)
        assert fig.chart.series == ["FCFS", "MECT", "MEET"]
        assert "heterogeneous" in fig.title

    def test_figure7_policies(self):
        fig = figure7(FAST)
        assert fig.chart.series == ["MM", "MMU", "MSD"]

    def test_figure7_rows_record_energy(self):
        fig = figure7(FAST)
        assert all("total_energy" in row for row in fig.rows)

    def test_paper_shape_intensity_monotone(self):
        """The §4 expected result: higher intensity ⇒ lower completion."""
        fig = figure6(FAST)
        for policy in fig.chart.series:
            assert fig.mean("low", policy) >= fig.mean("high", policy) - 1e-9

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AssignmentConfig(replications=0)
        with pytest.raises(ConfigurationError):
            AssignmentConfig(n_task_types=0)
