"""Survey schema, calibrated cohort and analysis (Fig. 8)."""

import io

import pytest

from repro.core.errors import ConfigurationError
from repro.education.survey import (
    PAPER_COHORT,
    PAPER_METRICS,
    SurveyStudy,
    generate_cohort,
)


@pytest.fixture(scope="module")
def study():
    return SurveyStudy(generate_cohort(seed=42))


class TestDemographics:
    def test_cohort_composition(self, study):
        demo = study.demographics()
        assert demo["n_students"] == 23
        assert demo["male_fraction"] == pytest.approx(17 / 23)
        assert demo["female_fraction"] == pytest.approx(6 / 23)
        assert demo["undergraduate_fraction"] == pytest.approx(14 / 23)
        assert demo["graduate_fraction"] == pytest.approx(9 / 23)

    def test_programming_experience(self, study):
        demo = study.demographics()
        assert demo["prog_experience_mean"] == pytest.approx(3.8, abs=0.1)
        assert demo["prog_experience_median"] == pytest.approx(3.0, abs=0.01)

    def test_os_course_fraction(self, study):
        assert study.demographics()["passed_os_fraction"] == pytest.approx(
            10 / 23
        )


class TestCalibration:
    @pytest.mark.parametrize(
        "metric", [m for m in PAPER_METRICS if not m.grad_only],
        ids=lambda m: m.key,
    )
    def test_gender_means_match_paper(self, study, metric):
        assert study.mean(metric.key, gender="female") == pytest.approx(
            metric.female_target, abs=0.15
        )
        assert study.mean(metric.key, gender="male") == pytest.approx(
            metric.male_target, abs=0.15
        )

    def test_overall_means_consistent(self, study):
        # overall = weighted mix of the gender means
        m = next(m for m in PAPER_METRICS if m.key == "intuitive_gui")
        expected = m.overall_target(6, 17)
        assert study.mean("intuitive_gui") == pytest.approx(expected, abs=0.15)

    def test_report_metric_is_the_low_one(self, study):
        """The paper's one weak score: comprehensive report ≈ 5.7."""
        value = study.mean("comprehensive_report")
        assert value == pytest.approx(5.61, abs=0.3)
        assert value < study.mean("ease_of_use")

    def test_grad_only_metric_restricted(self, study):
        scores = study.scores_for("adding_custom_sched")
        assert len(scores) == 9  # graduate students only

    def test_scores_are_integers_in_range(self, study):
        for metric in PAPER_METRICS:
            for score in study.scores_for(metric.key):
                assert isinstance(score, int)
                assert 0 <= score <= 10

    def test_deterministic(self):
        a = SurveyStudy(generate_cohort(seed=7))
        b = SurveyStudy(generate_cohort(seed=7))
        for metric in PAPER_METRICS:
            assert a.scores_for(metric.key) == b.scores_for(metric.key)


class TestFigures:
    def test_fig8a_metrics(self, study):
        chart = study.figure_8a()
        assert "intuitive GUI" in chart.groups
        assert "comprehensive report" in chart.groups
        assert set(chart.series) == {"overall", "female", "male"}

    def test_fig8b_metrics(self, study):
        chart = study.figure_8b()
        assert "overall usefulness" in chart.groups
        assert len(chart.groups) == 4

    def test_fig8b_female_above_male(self, study):
        """§5: 'E2C is more effective for female students'."""
        chart = study.figure_8b()
        for group in chart.groups:
            assert chart.get(group, "female") > chart.get(group, "male")

    def test_chart_renders(self, study):
        text = study.figure_8a().to_text()
        assert "Fig 8a" in text


class TestIO:
    def test_csv_round_trip(self, study):
        text = study.to_csv()
        clone = SurveyStudy.from_csv(io.StringIO(text))
        assert clone.demographics() == study.demographics()
        for metric in PAPER_METRICS:
            assert clone.scores_for(metric.key) == study.scores_for(metric.key)

    def test_csv_to_file(self, study, tmp_path):
        path = tmp_path / "survey.csv"
        study.to_csv(path)
        clone = SurveyStudy.from_csv(path)
        assert clone.demographics()["n_students"] == 23


class TestValidation:
    def test_empty_respondents_rejected(self):
        with pytest.raises(ConfigurationError):
            SurveyStudy([])

    def test_unknown_metric_rejected(self, study):
        with pytest.raises(ConfigurationError):
            study.scores_for("charisma")
