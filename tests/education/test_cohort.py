"""Synthetic student cohort and the pre/post quiz study."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.education.cohort import (
    PAPER_POST_MEAN,
    PAPER_PRE_MEAN,
    CohortModel,
    Student,
    mastery_for_target_score,
    run_quiz_study,
)
from repro.education.quiz import generate_quiz


class TestMasteryInversion:
    def test_guessing_floor(self):
        # mastery 0 -> expected score = P/M = 3 of 12
        assert mastery_for_target_score(3.0) == pytest.approx(0.0)

    def test_full_mastery(self):
        assert mastery_for_target_score(12.0) == pytest.approx(1.0)

    def test_paper_pre_target(self):
        p = mastery_for_target_score(PAPER_PRE_MEAN)
        assert p == pytest.approx(0.5111, abs=1e-3)

    def test_paper_post_target(self):
        p = mastery_for_target_score(PAPER_POST_MEAN)
        assert p == pytest.approx(0.66, abs=1e-2)

    def test_below_floor_rejected(self):
        with pytest.raises(ConfigurationError):
            mastery_for_target_score(1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            mastery_for_target_score(0.0)
        with pytest.raises(ConfigurationError):
            mastery_for_target_score(13.0)


class TestStudent:
    def test_full_mastery_perfect_score(self):
        quiz = generate_quiz(seed=0)
        student = Student(0, {m: 1.0 for m in quiz.methods})
        result = student.take(quiz, np.random.default_rng(0))
        assert result.points == 12

    def test_zero_mastery_scores_near_guessing(self):
        quiz = generate_quiz(seed=0)
        student = Student(0, {m: 0.0 for m in quiz.methods})
        rng = np.random.default_rng(1)
        scores = [student.take(quiz, rng).points for _ in range(300)]
        assert np.mean(scores) == pytest.approx(3.0, abs=0.5)

    def test_answers_cover_all_tasks(self):
        quiz = generate_quiz(seed=0)
        student = Student(0, {m: 0.5 for m in quiz.methods})
        answers = student.answer(quiz, np.random.default_rng(2))
        for method in quiz.methods:
            assert set(answers[method]) == {0, 1, 2}


class TestCohortModel:
    def test_sample_size(self):
        students = CohortModel(n_students=23, mean_mastery=0.5).sample(
            np.random.default_rng(0)
        )
        assert len(students) == 23

    def test_mastery_in_unit_interval(self):
        students = CohortModel(n_students=50, mean_mastery=0.5).sample(
            np.random.default_rng(1)
        )
        for s in students:
            for p in s.mastery.values():
                assert 0.0 <= p <= 1.0

    def test_mean_mastery_tracked(self):
        students = CohortModel(
            n_students=500, mean_mastery=0.6, concentration=30.0
        ).sample(np.random.default_rng(2))
        base_means = [np.mean(list(s.mastery.values())) for s in students]
        assert np.mean(base_means) == pytest.approx(0.6, abs=0.03)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CohortModel(n_students=0)
        with pytest.raises(ConfigurationError):
            CohortModel(mean_mastery=1.5)
        with pytest.raises(ConfigurationError):
            CohortModel(concentration=0.0)


class TestQuizStudy:
    def test_improvement_positive(self):
        study = run_quiz_study(seed=1)
        assert study.post_mean > study.pre_mean
        assert study.improvement > 0

    def test_paper_shape_over_replications(self):
        """Across seeds, means approach the paper's 7.6 -> 8.94 (+17.6%)."""
        pres, posts = [], []
        for seed in range(12):
            study = run_quiz_study(seed=seed)
            pres.append(study.pre_mean)
            posts.append(study.post_mean)
        assert np.mean(pres) == pytest.approx(PAPER_PRE_MEAN, abs=0.6)
        assert np.mean(posts) == pytest.approx(PAPER_POST_MEAN, abs=0.6)
        improvement = (np.mean(posts) - np.mean(pres)) / np.mean(pres)
        assert 0.10 < improvement < 0.28

    def test_deterministic(self):
        a = run_quiz_study(seed=9)
        b = run_quiz_study(seed=9)
        assert a.pre_scores == b.pre_scores
        assert a.post_scores == b.post_scores

    def test_cohort_size(self):
        study = run_quiz_study(seed=0, n_students=23)
        assert len(study.pre_scores) == 23
        assert len(study.post_scores) == 23

    def test_scores_bounded(self):
        study = run_quiz_study(seed=3)
        assert all(0 <= s <= study.max_points for s in study.pre_scores)
        assert all(0 <= s <= study.max_points for s in study.post_scores)

    def test_as_dict(self):
        d = run_quiz_study(seed=0).as_dict()
        assert set(d) == {
            "pre_mean",
            "post_mean",
            "max_points",
            "improvement",
            "n_students",
        }
