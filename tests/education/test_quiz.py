"""Quiz engine: ground truth, grading, generation."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.education.quiz import (
    DEFAULT_METHODS,
    QuizQuestion,
    generate_quiz,
)
from repro.machines.eet import EETMatrix


@pytest.fixture
def hand_quiz():
    """3 tasks × 4 machines with hand-checkable EETs.

            A    B    C    D
    T1     4    2    8    6     deadline 20
    T2     3    7    1    9     deadline 10
    T3     5    5    5    2     deadline 30
    """
    eet = EETMatrix(
        np.array(
            [[4.0, 2.0, 8.0, 6.0], [3.0, 7.0, 1.0, 9.0], [5.0, 5.0, 5.0, 2.0]]
        ),
        ["T1", "T2", "T3"],
        ["A", "B", "C", "D"],
    )
    return QuizQuestion(eet=eet, deadlines=[20.0, 10.0, 30.0])


class TestGroundTruth:
    def test_meet_is_rowwise_argmin(self, hand_quiz):
        assert hand_quiz.correct_mapping("MEET") == {0: 1, 1: 2, 2: 3}

    def test_mect_sequential_with_load(self, hand_quiz):
        # T1 -> B (2). T2 -> C (1). T3: A=5, B=2+5=7, C=1+5=6, D=2 -> D.
        assert hand_quiz.correct_mapping("MECT") == {0: 1, 1: 2, 2: 3}

    def test_mect_load_matters(self):
        """Two identical tasks: second must avoid the machine the first took."""
        eet = EETMatrix(
            np.array([[2.0, 3.0], [2.0, 3.0]]), ["T1", "T2"], ["A", "B"]
        )
        quiz = QuizQuestion(eet=eet, deadlines=[50.0, 50.0])
        mapping = quiz.correct_mapping("MECT")
        assert mapping[0] == 0  # EET 2 on A
        assert mapping[1] == 1  # A would finish at 4; B finishes at 3

    def test_mm_batch_mapping(self, hand_quiz):
        # Min-Min: global min is T2@C (1); then T1@B (2); then T3:
        # A=5, B=2+5=7, C=1+5=6, D=2 -> D.
        assert hand_quiz.correct_mapping("MM") == {0: 1, 1: 2, 2: 3}

    def test_msd_deadline_order(self, hand_quiz):
        # EDF order: T2 (10), T1 (20), T3 (30); same machines here.
        mapping = hand_quiz.correct_mapping("MSD")
        assert mapping == {0: 1, 1: 2, 2: 3}

    def test_methods_can_disagree(self):
        """MEET vs MECT disagree when the fast machine is contested."""
        eet = EETMatrix(
            np.array([[2.0, 4.0], [2.0, 4.0], [2.0, 4.0]]),
            ["T1", "T2", "T3"],
            ["fast", "slow"],
        )
        quiz = QuizQuestion(eet=eet, deadlines=[99.0, 99.0, 99.0])
        meet = quiz.correct_mapping("MEET")
        mect = quiz.correct_mapping("MECT")
        assert set(meet.values()) == {0}  # MEET piles everything on 'fast'
        assert 1 in mect.values()  # MECT overflows to 'slow'

    def test_answer_key_covers_all_methods(self, hand_quiz):
        key = hand_quiz.answer_key()
        assert set(key) == set(DEFAULT_METHODS)
        for mapping in key.values():
            assert set(mapping) == {0, 1, 2}


class TestGrading:
    def test_perfect_score(self, hand_quiz):
        result = hand_quiz.grade(hand_quiz.answer_key())
        assert result.points == result.max_points == 12
        assert result.score_fraction == 1.0

    def test_blank_answers_zero(self, hand_quiz):
        result = hand_quiz.grade({})
        assert result.points == 0

    def test_partial_credit(self, hand_quiz):
        key = hand_quiz.answer_key()
        answers = {"MEET": key["MEET"]}  # only one method answered
        result = hand_quiz.grade(answers)
        assert result.points == 3
        assert result.per_method["MEET"] == 3
        assert result.per_method["MECT"] == 0

    def test_wrong_machine_scores_zero_for_that_task(self, hand_quiz):
        key = hand_quiz.answer_key()
        answers = {m: dict(v) for m, v in key.items()}
        answers["MM"][0] = (answers["MM"][0] + 1) % 4
        result = hand_quiz.grade(answers)
        assert result.points == 11

    def test_unknown_method_in_answers_ignored(self, hand_quiz):
        key = hand_quiz.answer_key()
        key["NOPE"] = {0: 0}
        assert hand_quiz.grade(key).points == 12


class TestValidation:
    def test_deadline_count_mismatch(self):
        eet = EETMatrix(np.ones((2, 2)), ["T1", "T2"], ["A", "B"])
        with pytest.raises(ConfigurationError):
            QuizQuestion(eet=eet, deadlines=[1.0])

    def test_nonpositive_deadline(self):
        eet = EETMatrix(np.ones((1, 2)), ["T1"], ["A", "B"])
        with pytest.raises(ConfigurationError):
            QuizQuestion(eet=eet, deadlines=[0.0])

    def test_no_methods(self):
        eet = EETMatrix(np.ones((1, 2)), ["T1"], ["A", "B"])
        with pytest.raises(ConfigurationError):
            QuizQuestion(eet=eet, deadlines=[1.0], methods=())


class TestGeneration:
    def test_paper_shape(self):
        quiz = generate_quiz(seed=0)
        assert quiz.n_tasks == 3
        assert quiz.eet.n_machine_types == 4
        assert quiz.max_points == 12

    def test_deterministic(self):
        a = generate_quiz(seed=5)
        b = generate_quiz(seed=5)
        assert a.eet == b.eet
        assert a.deadlines == b.deadlines

    def test_to_text_mentions_everything(self):
        quiz = generate_quiz(seed=1)
        text = quiz.to_text()
        for name in quiz.eet.machine_type_names:
            assert name in text
        for method in quiz.methods:
            assert method in text

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_quiz(n_tasks=0)
        with pytest.raises(ConfigurationError):
            generate_quiz(n_machines=1)
