"""Student-side report analysis: CSVs back to assignment charts."""

import io

import pytest

from repro.core.errors import ReportError
from repro.education.analysis import (
    build_completion_chart,
    completion_by_type,
    completion_percentage,
    load_report_csv,
)


@pytest.fixture
def saved_task_report(scenario_factory, tmp_path):
    result = scenario_factory("MECT").run()
    path = tmp_path / "task_report.csv"
    result.reports.task_report().to_csv(path)
    return path, result


class TestLoad:
    def test_round_trip_row_count(self, saved_task_report):
        path, result = saved_task_report
        rows = load_report_csv(path)
        assert len(rows) == result.summary.total_tasks

    def test_load_from_stream(self, saved_task_report):
        path, _ = saved_task_report
        rows = load_report_csv(io.StringIO(path.read_text(encoding="utf-8")))
        assert rows

    def test_empty_rejected(self):
        with pytest.raises(ReportError):
            load_report_csv(io.StringIO("a,b\n"))


class TestCompletionMetrics:
    def test_matches_summary(self, saved_task_report):
        path, result = saved_task_report
        rows = load_report_csv(path)
        assert completion_percentage(rows) == pytest.approx(
            100.0 * result.summary.completion_rate
        )

    def test_by_type_matches_summary(self, saved_task_report):
        path, result = saved_task_report
        rows = load_report_csv(path)
        by_type = completion_by_type(rows)
        for name, rate in result.summary.completion_rate_by_type.items():
            assert by_type[name] == pytest.approx(100.0 * rate)

    def test_wrong_report_kind_rejected(self):
        rows = [{"metric": "x", "value": "1"}]
        with pytest.raises(ReportError):
            completion_percentage(rows)


class TestChart:
    def test_full_student_workflow(self, scenario_factory, tmp_path):
        """Run → save CSVs → reload → chart, exactly as the assignment asks."""
        saved: dict[str, dict[str, object]] = {}
        for intensity in ("low", "high"):
            saved[intensity] = {}
            for policy in ("FCFS", "MECT"):
                scenario = scenario_factory(
                    policy,
                    generator={"duration": 150.0, "intensity": intensity},
                )
                result = scenario.run()
                path = tmp_path / f"{intensity}_{policy}.csv"
                result.reports.task_report().to_csv(path)
                saved[intensity][policy] = path
        chart = build_completion_chart(saved)
        assert chart.groups == ["low", "high"]
        assert chart.series == ["FCFS", "MECT"]
        # the assignment's lesson survives the CSV round trip
        assert chart.get("low", "MECT") >= chart.get("high", "MECT")
