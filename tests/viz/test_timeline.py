"""Gantt timeline chart."""

import pytest

from repro.core.errors import ConfigurationError
from repro.viz.timeline import TimelineChart, timeline_from_records


class TestTimelineChart:
    def test_empty(self):
        assert "(empty timeline)" in TimelineChart().to_text()

    def test_single_interval_fills_label(self):
        chart = TimelineChart(width=20)
        chart.add("M1", "A", 0.0, 10.0)
        text = chart.to_text(t_max=10.0)
        row = next(l for l in text.splitlines() if l.startswith("M1"))
        assert row.count("A") == 20

    def test_two_machines_two_rows(self):
        chart = TimelineChart(width=20)
        chart.add("M1", "A", 0.0, 5.0)
        chart.add("M2", "B", 5.0, 10.0)
        lines = chart.to_text().splitlines()
        assert any(l.startswith("M1") for l in lines)
        assert any(l.startswith("M2") for l in lines)

    def test_interval_positioning(self):
        chart = TimelineChart(width=10)
        chart.add("M", "X", 5.0, 10.0)
        row = next(
            l for l in chart.to_text(t_max=10.0).splitlines() if l.startswith("M ")
        )
        bar = row.split("|")[1]
        assert bar[:5].strip() == ""
        assert bar[5:] == "XXXXX"

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            TimelineChart().add("M", "A", 5.0, 3.0)

    def test_too_small_width_rejected(self):
        with pytest.raises(ConfigurationError):
            TimelineChart(width=3)


class TestFromRecords:
    def test_builds_from_task_records(self, scenario_factory):
        result = scenario_factory("MECT").run()
        chart = timeline_from_records(result.task_records)
        text = chart.to_text()
        assert "machine timeline" in text
        assert "M1-0" in text

    def test_skips_never_started_tasks(self):
        records = [
            {"task_type": "T1", "machine": "M", "start_time": "", "completion_time": ""},
            {"task_type": "T2", "machine": "M", "start_time": 0.0, "completion_time": 4.0},
        ]
        chart = timeline_from_records(records)
        text = chart.to_text()
        assert "T" in text  # the executed one appears

    def test_uses_missed_time_as_end(self):
        records = [
            {
                "task_type": "T1",
                "machine": "M",
                "start_time": 0.0,
                "completion_time": "",
                "missed_time": 3.0,
            }
        ]
        text = timeline_from_records(records, width=12).to_text(t_max=3.0)
        row = next(l for l in text.splitlines() if l.startswith("M "))
        assert "T" in row
