"""ASCII bar charts: rendering, data export."""

import pytest

from repro.core.errors import ConfigurationError
from repro.viz.barchart import BarChart, GroupedBarChart


class TestBarChart:
    def test_add_and_render(self):
        chart = BarChart("scores", width=10, max_value=10.0)
        chart.add("a", 5.0).add("b", 10.0)
        text = chart.to_text()
        assert "scores" in text
        assert "a" in text and "b" in text
        # b's bar is full width, a's is half
        a_line = next(l for l in text.splitlines() if l.startswith("a"))
        b_line = next(l for l in text.splitlines() if l.startswith("b"))
        assert a_line.count("#") == 5
        assert b_line.count("#") == 10

    def test_values_printed(self):
        chart = BarChart("x", unit="%")
        chart.add("a", 42.5)
        assert "42.5%" in chart.to_text()

    def test_auto_scale(self):
        chart = BarChart("x", width=10)
        chart.add("a", 50.0)
        line = chart.to_text().splitlines()[-1]
        assert line.count("#") == 10  # max value fills the width

    def test_values_above_max_clamped(self):
        chart = BarChart("x", width=10, max_value=10.0)
        chart.add("a", 25.0)
        assert chart.to_text().splitlines()[-1].count("#") == 10

    def test_mismatched_lengths_rejected(self):
        chart = BarChart("x", labels=["a"], values=[])
        with pytest.raises(ConfigurationError):
            chart.to_text()

    def test_to_dicts(self):
        chart = BarChart("x")
        chart.add("a", 1.0)
        assert chart.to_dicts() == [{"label": "a", "value": 1.0}]

    def test_to_csv(self):
        chart = BarChart("x")
        chart.add("a", 1.5)
        assert chart.to_csv() == "label,value\na,1.5\n"

    def test_csv_to_file(self, tmp_path):
        chart = BarChart("x")
        chart.add("a", 1.0)
        path = tmp_path / "chart.csv"
        chart.to_csv(path)
        assert path.read_text(encoding="utf-8").startswith("label,value")

    def test_empty_chart_renders(self):
        assert "empty" in BarChart("empty").to_text()


class TestGroupedBarChart:
    def _chart(self):
        chart = GroupedBarChart("fig", max_value=100.0, unit="%")
        for group in ("low", "high"):
            for series, value in (("FCFS", 90.0), ("MECT", 95.0)):
                chart.set(group, series, value - (50 if group == "high" else 0))
        return chart

    def test_groups_and_series_registered_in_order(self):
        chart = self._chart()
        assert chart.groups == ["low", "high"]
        assert chart.series == ["FCFS", "MECT"]

    def test_get(self):
        chart = self._chart()
        assert chart.get("low", "MECT") == 95.0
        assert chart.get("high", "FCFS") == 40.0

    def test_get_missing_rejected(self):
        chart = self._chart()
        with pytest.raises(ConfigurationError):
            chart.get("low", "NOPE")

    def test_render_sections(self):
        text = self._chart().to_text()
        assert "[low]" in text and "[high]" in text
        assert text.index("[low]") < text.index("[high]")

    def test_to_dicts(self):
        rows = self._chart().to_dicts()
        assert {"group": "low", "series": "FCFS", "value": 90.0} in rows
        assert len(rows) == 4

    def test_to_csv_header(self):
        assert self._chart().to_csv().splitlines()[0] == "group,series,value"

    def test_series_values(self):
        chart = self._chart()
        assert chart.series_values("FCFS") == [90.0, 40.0]

    def test_set_overwrites(self):
        chart = self._chart()
        chart.set("low", "FCFS", 10.0)
        assert chart.get("low", "FCFS") == 10.0
        assert chart.groups == ["low", "high"]  # no duplicate group
