"""System renderer: the Fig-1 frame and the missed-tasks component."""

import pytest

from repro.viz.renderer import SystemRenderer


@pytest.fixture
def simulator(scenario_factory):
    return scenario_factory("MECT").build_simulator()


class TestFrame:
    def test_frame_shows_policy_and_time(self, simulator):
        text = SystemRenderer().render(simulator)
        assert "MECT" in text
        assert "current time" in text

    def test_frame_lists_machines(self, simulator):
        text = SystemRenderer().render(simulator)
        assert "M1-0" in text and "M2-1" in text

    def test_frame_counters(self, simulator):
        text = SystemRenderer().render(simulator)
        assert "completed: 0" in text
        assert "cancelled: 0" in text
        assert "missed: 0" in text

    def test_frame_updates_after_events(self, simulator):
        renderer = SystemRenderer()
        simulator.run()
        text = renderer.render(simulator)
        assert "simulation finished" in text
        counts = simulator.counts()
        assert f"completed: {counts['completed']}" in text

    def test_running_task_marker(self, simulator):
        # advance until something is running
        renderer = SystemRenderer()
        while simulator.step() is not None:
            if any(not m.is_idle for m in simulator.cluster):
                break
        assert "▶" in renderer.render(simulator)

    def test_queue_overflow_ellipsis(self, scenario_factory):
        scenario = scenario_factory(
            "MEET", generator={"duration": 300.0, "intensity": 4.0}
        )
        sim = scenario.build_simulator()
        renderer = SystemRenderer(max_queue_display=2)
        for _ in range(200):
            if sim.step() is None:
                break
        text = renderer.render(sim)
        assert "…+" in text  # MEET piles tasks on one machine

    def test_colour_mode_emits_ansi(self, simulator):
        renderer = SystemRenderer(colour=True)
        while simulator.step() is not None:
            if any(not m.is_idle for m in simulator.cluster):
                break
        assert "\x1b[" in renderer.render(simulator)

    def test_compact_counts_line(self, simulator):
        line = SystemRenderer().render_counts(simulator)
        assert "t=" in line and "done=0" in line


class TestMissedTasksComponent:
    def test_empty_when_no_misses(self, simulator):
        simulator.run()
        text = SystemRenderer().render_missed_tasks(simulator)
        if simulator.counts()["missed"] == 0:
            assert "(no missed tasks)" in text

    def test_rows_for_missed(self, scenario_factory):
        sim = scenario_factory(
            "MEET", generator={"duration": 300.0, "intensity": 4.0}
        ).build_simulator()
        sim.run()
        assert sim.counts()["missed"] > 0
        text = SystemRenderer().render_missed_tasks(sim)
        assert "Missed Tasks" in text
        assert "machine_queue" in text or "executing" in text
