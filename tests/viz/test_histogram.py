"""ASCII histogram."""

import pytest

from repro.core.errors import ConfigurationError
from repro.viz.histogram import Histogram


class TestHistogram:
    def test_counts_partition_sample(self):
        h = Histogram("waits", [0.1, 0.2, 0.3, 5.0, 5.1], bins=5)
        _, counts = h.edges_and_counts()
        assert counts.sum() == 5

    def test_empty_sample(self):
        h = Histogram("waits", [])
        assert "(no samples)" in h.to_text()
        assert h.n == 0

    def test_single_value_sample(self):
        h = Histogram("waits", [2.0, 2.0, 2.0], bins=4)
        _, counts = h.edges_and_counts()
        assert counts.sum() == 3

    def test_render_contains_percentages(self):
        h = Histogram("waits", [1.0] * 9 + [10.0], bins=2)
        text = h.to_text()
        assert "90.0%" in text
        assert "10.0%" in text

    def test_quantiles(self):
        h = Histogram("waits", list(range(101)))
        q = h.quantiles((0.5,))
        assert q[0.5] == pytest.approx(50.0)

    def test_quantiles_in_render(self):
        h = Histogram("waits", [1.0, 2.0, 3.0])
        assert "p50=" in h.to_text()
        assert "n=3" in h.to_text()

    def test_invalid_bins_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("x", [1.0], bins=0)

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("x", [float("nan")])

    def test_from_task_records(self, scenario_factory):
        result = scenario_factory("MECT").run()
        h = Histogram.from_task_records(result.task_records, "wait_time")
        assert h.n > 0
        assert "wait_time" in h.to_text()

    def test_from_task_records_skips_blanks(self):
        records = [{"wait_time": ""}, {"wait_time": 2.0}, {}]
        h = Histogram.from_task_records(records)
        assert h.n == 1

    def test_higher_intensity_longer_tail(self, scenario_factory):
        low = scenario_factory(
            "MECT", generator={"duration": 300.0, "intensity": "low"}
        ).run()
        high = scenario_factory(
            "MECT", generator={"duration": 300.0, "intensity": "high"}
        ).run()
        h_low = Histogram.from_task_records(low.task_records, "wait_time")
        h_high = Histogram.from_task_records(high.task_records, "wait_time")
        assert h_high.quantiles((0.9,))[0.9] > h_low.quantiles((0.9,))[0.9]
