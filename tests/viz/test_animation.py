"""Animation driver: frame production, stepping, streaming."""

import io

import pytest

from repro.core.errors import ConfigurationError
from repro.viz.animation import Animator


@pytest.fixture
def factory(scenario_factory):
    return scenario_factory("MECT").build_simulator


class TestFrames:
    def test_collects_frames_headless(self, factory):
        animator = Animator(factory)
        animator.play()
        assert len(animator.frames) > 1
        assert "simulation finished" in animator.frames[-1]

    def test_frame_every_thins_output(self, factory):
        dense = Animator(factory)
        dense.play()
        sparse = Animator(factory, frame_every=5)
        sparse.play()
        assert len(sparse.frames) < len(dense.frames)

    def test_max_frames_guard(self, factory):
        animator = Animator(factory, max_frames=3)
        animator.play()
        assert len(animator.frames) == 3
        assert animator.simulator.is_finished  # run still completed

    def test_stream_output(self, factory):
        stream = io.StringIO()
        animator = Animator(factory, stream=stream, frame_every=10)
        animator.play()
        assert "current time" in stream.getvalue()

    def test_in_place_uses_ansi_clear(self, factory):
        stream = io.StringIO()
        animator = Animator(
            factory, stream=stream, in_place=True, frame_every=10
        )
        animator.play()
        assert "\x1b[2J" in stream.getvalue()

    def test_invalid_frame_every_rejected(self, factory):
        with pytest.raises(ConfigurationError):
            Animator(factory, frame_every=0)


class TestControl:
    def test_step(self, factory):
        animator = Animator(factory)
        event = animator.step()
        assert event is not None
        assert animator.simulator.events_processed == 1

    def test_reset_clears_frames(self, factory):
        animator = Animator(factory)
        animator.play()
        animator.reset()
        assert animator.frames == []
        assert animator.simulator.events_processed == 0

    def test_play_after_reset_reproduces(self, factory):
        animator = Animator(factory)
        animator.play()
        first = animator.simulator.result().summary.as_dict()
        animator.reset()
        animator.play()
        assert animator.simulator.result().summary.as_dict() == first
