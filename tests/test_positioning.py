"""Table 1 regeneration: literature rows + introspected E2C row."""

from repro.positioning import (
    SimulatorEntry,
    introspect_e2c,
    positioning_table,
    render_table,
)


class TestTable:
    def test_six_rows(self):
        assert len(positioning_table()) == 6

    def test_literature_rows_match_paper(self):
        by_name = {e.name: e for e in positioning_table()}
        assert by_name["CloudSim"].language == "Java"
        assert by_name["CloudSim"].gui == "no"
        assert by_name["CloudSim"].workload_generator == "limited"
        assert by_name["EdgeCloudSim"].workload_generator == "yes"
        assert by_name["iCanCloud"].language == "C++"
        assert by_name["iCanCloud"].gui == "yes"
        assert by_name["TeachCloud"].gui == "yes"
        assert by_name["TeachCloud"].heterogeneous == "no"

    def test_e2c_row_claims_all_features(self):
        e2c = introspect_e2c()
        assert e2c.language == "Python"
        assert e2c.gui == "yes"
        assert e2c.heterogeneous == "yes"
        assert e2c.workload_generator == "yes"

    def test_e2c_is_the_only_full_row(self):
        full = [
            e
            for e in positioning_table()
            if e.gui == "yes"
            and e.heterogeneous == "yes"
            and e.workload_generator == "yes"
        ]
        assert [e.name for e in full] == ["E2C"]

    def test_as_dict_keys(self):
        d = SimulatorEntry("X", "Go", "no", "no", "no").as_dict()
        assert set(d) == {
            "simulator",
            "language",
            "gui",
            "heterogeneous",
            "workload_generator",
        }


class TestRendering:
    def test_render_contains_all_simulators(self):
        text = render_table()
        for name in (
            "CloudSim",
            "iFogSim",
            "EdgeCloudSim",
            "iCanCloud",
            "TeachCloud",
            "E2C",
        ):
            assert name in text

    def test_render_has_header(self):
        text = render_table()
        assert "Simulator" in text
        assert "Heterogeneous" in text
